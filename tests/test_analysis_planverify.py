"""Plan-verifier tests: real plans pass, and a deliberately malformed plan
of every operator kind is rejected with a diagnostic naming the problem."""

from __future__ import annotations

import pytest

from repro.analysis.planverify import (
    PlanVerificationError,
    VERIFY_METRICS,
    iter_operators,
    maybe_verify_plan,
    set_verify_plans,
    verify_plan,
)
from repro.errors import PlanError
from repro.relational import algebra as A
from repro.relational import expr as E
from repro.relational.database import Database
from repro.relational.expr import ColumnRef, RowLayout
from repro.relational.types import ColumnType
from repro.sql.parser import parse_statement


def _layout(*cols):
    """RowLayout from ('name', ColumnType) pairs, qualified under 'r'."""
    return RowLayout([("r", name, ctype) for name, ctype in cols])


def _source(layout, rows=((1, 2),)):
    return A.RowSource(layout, list(rows))


INT2 = [("a", ColumnType.INT), ("b", ColumnType.INT)]


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, val INT, tag TEXT)")
    db.execute("CREATE INDEX iv ON t (val)")
    for i in range(8):
        db.insert("t", {"id": i, "val": i % 3, "tag": f"x{i}"})
    return db


def _plan(db, sql):
    return db.planner.plan_select(parse_statement(sql))


def _find(plan, kind):
    for op in iter_operators(plan):
        if type(op).__name__ == kind:
            return op
    raise AssertionError(f"plan has no {kind}: {plan.explain()}")


def _rejects(plan, fragment):
    with pytest.raises(PlanVerificationError, match=fragment):
        verify_plan(plan)


class TestGoodPlansPass:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT id FROM t",
            "SELECT id FROM t WHERE val = 1",
            "SELECT id FROM t WHERE val >= 0 AND val <= 2 ORDER BY tag",
            "SELECT DISTINCT tag FROM t LIMIT 3",
            "SELECT val, COUNT(*) AS n FROM t GROUP BY val",
            "SELECT a.id, b.id FROM t a JOIN t b ON a.val = b.val",
            "SELECT 1, 'x'",
        ],
    )
    def test_planner_output_verifies(self, db, sql):
        assert verify_plan(_plan(db, sql)) >= 1

    def test_error_is_a_plan_error(self):
        assert issubclass(PlanVerificationError, PlanError)


class TestMalformedPlansRejected:
    """One deliberately broken plan per operator kind, each with a precise
    diagnostic.  Constructors enforce some invariants, so several cases
    corrupt a well-formed operator after construction — exactly the class
    of planner bug the verifier exists to catch."""

    def test_rowsource_row_arity(self):
        op = A.RowSource(_layout(*INT2), [(1,)])
        _rejects(op, r"row 0 has 1 values for a 2-column layout")

    def test_filter_layout_not_preserved(self):
        op = A.Filter(_source(_layout(*INT2)), E.Literal(True))
        op.layout = _layout(("a", ColumnType.INT))
        _rejects(op, r"Filter must preserve its child's layout")

    def test_filter_unbound_reference(self):
        op = A.Filter(_source(_layout(*INT2)), ColumnRef("ghost"))
        _rejects(op, r"unbound column reference 'ghost'")

    def test_filter_reference_out_of_range(self):
        op = A.Filter(_source(_layout(*INT2)), ColumnRef("a", "r", 5))
        _rejects(op, r"references slot 5 but the input has only 2 columns")

    def test_project_arity_mismatch(self):
        op = A.Project(
            _source(_layout(*INT2)), [ColumnRef("a", "r", 0)], ["a"], [ColumnType.INT]
        )
        op.layout = RowLayout([(None, "a", ColumnType.INT), (None, "b", ColumnType.INT)])
        _rejects(op, r"projects 1 expressions into 2 output slots")

    def test_sort_key_out_of_range(self):
        op = A.Sort(_source(_layout(*INT2)), [(ColumnRef("a", "r", 9), True)])
        _rejects(op, r"sort key references slot 9")

    def test_limit_negative_after_construction(self):
        op = A.Limit(_source(_layout(*INT2)), 5)
        op.offset = -1
        _rejects(op, r"negative LIMIT/OFFSET")

    def test_distinct_layout_not_preserved(self):
        op = A.Distinct(_source(_layout(*INT2)))
        op.layout = _layout(("a", ColumnType.INT))
        _rejects(op, r"Distinct must preserve its child's layout")

    def test_rename_arity_change(self):
        op = A.Rename(_source(_layout(*INT2)), "v")
        op.layout = RowLayout([("v", "a", ColumnType.INT)])
        _rejects(op, r"rename changes arity \(2 -> 1\)")

    def test_rename_type_change(self):
        op = A.Rename(_source(_layout(*INT2)), "v")
        op.layout = RowLayout(
            [("v", "a", ColumnType.INT), ("v", "b", ColumnType.TEXT)]
        )
        _rejects(op, r"rename changes the type of slot 1")

    def test_nested_loop_join_layout(self):
        left, right = _source(_layout(*INT2)), _source(_layout(("c", ColumnType.INT)))
        op = A.NestedLoopJoin(left, right)
        op.layout = left.layout
        _rejects(op, r"join layout must be outer slots followed by inner slots")

    def test_hash_join_key_out_of_range(self):
        left, right = _source(_layout(*INT2)), _source(_layout(("c", ColumnType.INT)))
        op = A.HashJoin(left, right, [0], [0])
        op.inner_keys = (7,)
        _rejects(op, r"inner key position 7 out of range")

    def test_hash_join_incompatible_key_types(self):
        left = _source(_layout(("a", ColumnType.INT)))
        right = _source(_layout(("s", ColumnType.TEXT)), [("x",)])
        op = A.HashJoin(left, right, [0], [0])
        _rejects(op, r"join key types incompatible: outer\[0\] is INT")

    def test_merge_join_empty_keys(self):
        left = _source(_layout(*INT2))
        right = _source(
            RowLayout([("s", "a", ColumnType.INT), ("s", "b", ColumnType.INT)])
        )
        op = A.MergeJoin(left, right, [0], [0])
        op.outer_keys = op.inner_keys = ()
        _rejects(op, r"matching, non-empty key position lists")

    def test_union_incompatible_columns(self):
        left = _source(_layout(("a", ColumnType.INT)))
        right = _source(_layout(("f", ColumnType.BOOL)), [(True,)])
        op = A.UnionAll(left, right)
        _rejects(op, r"UNION column 0 types incompatible: INT vs BOOL")

    def test_aggregate_output_arity(self):
        child = _source(_layout(*INT2))
        op = A.Aggregate(
            child,
            [(ColumnRef("a", "r", 0), "a", ColumnType.INT)],
            [A.AggSpec("count", None, "n", ColumnType.INT)],
        )
        op.layout = RowLayout([(None, "a", ColumnType.INT)])
        _rejects(op, r"declares 1 output columns but has 1 groups \+ 1 aggregates")

    def test_aggregate_group_ref_out_of_range(self):
        child = _source(_layout(*INT2))
        op = A.Aggregate(
            child,
            [(ColumnRef("a", "r", 4), "a", ColumnType.INT)],
            [A.AggSpec("count", None, "n", ColumnType.INT)],
        )
        _rejects(op, r"group expression references slot 4")

    def test_seqscan_layout_schema_mismatch(self, db):
        op = _find(_plan(db, "SELECT id FROM t"), "SeqScan")
        op.layout = _layout(("a", ColumnType.INT))
        _rejects(op, r"scan layout does not match schema of table 't'")

    def test_index_scan_key_length_mismatch(self, db):
        op = _find(_plan(db, "SELECT id FROM t WHERE val = 1"), "IndexEqScan")
        op.key = (1, 2)
        _rejects(op, r"lookup key has 2 components but index 'iv' covers 1")

    def test_unknown_prefetch_hint(self, db):
        op = _find(_plan(db, "SELECT id FROM t"), "SeqScan")
        op.prefetch_hint = "psychic"
        _rejects(op, r"unknown prefetch_hint 'psychic'")

    def test_segment_fed_scan_without_segment_store(self, db):
        op = _find(_plan(db, "SELECT id FROM t"), "SeqScan")
        op.use_segments = True
        op.table.segments = None
        _rejects(op, r"segment-fed SeqScan over table 't' which has no segment store")

    def test_use_segments_must_be_bool(self, db):
        op = _find(_plan(db, "SELECT id FROM t"), "SeqScan")
        op.use_segments = "yes"
        _rejects(op, r"use_segments must be a bool")

    def test_range_scan_bound_longer_than_index(self, db):
        op = _find(
            _plan(db, "SELECT id FROM t WHERE val >= 0 AND val <= 2"),
            "IndexRangeScan",
        )
        op.low = (0, 99)
        _rejects(op, r"range low bound has 2 components but index 'iv' covers only 1")

    def test_negative_estimate(self):
        op = _source(_layout(*INT2))
        op.est_rows = -3.0
        _rejects(op, r"negative cardinality estimate")

    def test_untyped_slot(self):
        op = _source(_layout(*INT2))
        op.layout.slots = (("r", "a", "INT"), ("r", "b", ColumnType.INT))
        _rejects(op, r"slot 0 is untyped")

    def test_violation_names_nested_operator(self):
        # The diagnostic points at the broken node, not the plan root.
        bad = A.Filter(_source(_layout(*INT2)), ColumnRef("ghost"))
        root = A.Limit(bad, 10)
        with pytest.raises(PlanVerificationError, match=r"^Filter\("):
            verify_plan(root)


class TestWiring:
    def test_explain_carries_verified_line(self, db):
        result = db.execute("EXPLAIN SELECT id FROM t WHERE val = 1")
        assert "Plan verified:" in result.plan
        assert "operators ok" in result.plan

    def test_explain_analyze_carries_verified_line(self, db):
        result = db.execute("EXPLAIN ANALYZE SELECT id FROM t ORDER BY tag")
        assert "Plan verified:" in result.plan

    def test_maybe_verify_respects_switch(self, db):
        plan = _plan(db, "SELECT id FROM t")
        previous = set_verify_plans(False)
        try:
            assert maybe_verify_plan(plan) is None
            set_verify_plans(True)
            assert maybe_verify_plan(plan) >= 1
        finally:
            set_verify_plans(previous)

    def test_every_query_verified_when_enabled(self, db):
        previous = set_verify_plans(True)
        try:
            before = VERIFY_METRICS["verified_plans"]
            db.query("SELECT id FROM t WHERE val = 2")
            db.query("SELECT id FROM t UNION ALL SELECT val FROM t")
            assert VERIFY_METRICS["verified_plans"] > before
        finally:
            set_verify_plans(previous)

    def test_metrics_snapshot_reports_counts(self, db):
        snapshot = db.metrics_snapshot()
        assert "plans_verified" in snapshot["executor"]
        assert "plans_rejected" in snapshot["executor"]

    def test_rejection_counted(self):
        before = VERIFY_METRICS["rejected_plans"]
        with pytest.raises(PlanVerificationError):
            verify_plan(A.RowSource(_layout(*INT2), [(1,)]))
        assert VERIFY_METRICS["rejected_plans"] == before + 1
