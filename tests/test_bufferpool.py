"""Buffer-pool v2 units: LRU-K eviction, pins, prefetch, the free-space
map, vacuum, and the columnar segment cache.

The crash/chaos suites prove these mechanisms survive failure; this file
pins their *behaviour* — eviction order, counter semantics, RowId
stability across vacuum, and segment-cache consistency under mutation.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageError
from repro.relational.database import Database
from repro.relational.faults import FaultInjector
from repro.relational.heap import HeapFile, RowId
from repro.relational.pager import PAGE_SIZE, FilePager, MemoryPager
from repro.relational.planner import PlannerConfig
from repro.relational.schema import Column, TableSchema
from repro.relational.segments import SegmentStore
from repro.relational.table import Table
from repro.relational.types import ColumnType


def _pager(tmp_path, name="p.heap", **kwargs):
    return FilePager(str(tmp_path / name), **kwargs)


def _flushed_pages(pager, count):
    """Allocate *count* pages, flush them clean, and drop them from the
    pool so subsequent reads start cold."""
    for _ in range(count):
        pager.allocate_page()
    pager.flush()
    for page_no in range(count):
        pager._pool.pop(page_no, None)
        pager._unqueue(page_no)
        pager._hot.discard(page_no)
    return count


class TestEvictionPolicy:
    def test_probation_evicts_before_protected(self, tmp_path):
        pager = _pager(tmp_path, pool_size=3)
        _flushed_pages(pager, 6)
        # Pages 0 and 1 become hot (two references); page 2 stays cold.
        for page_no in (0, 1, 0, 1, 2):
            pager.read_page(page_no)
        # Admitting page 3 must evict the probation page (2), not a hot one.
        pager.read_page(3)
        assert 0 in pager._pool and 1 in pager._pool
        assert 2 not in pager._pool
        pager.close()

    def test_sequential_scan_does_not_flush_hot_set(self, tmp_path):
        pager = _pager(tmp_path, pool_size=4)
        _flushed_pages(pager, 30)
        pager.read_page(0)
        pager.read_page(0)  # hot
        for page_no in range(1, 30):  # one-touch scan traffic
            pager.read_page(page_no)
        assert 0 in pager._pool, "scan traffic evicted a protected page"
        pager.close()

    def test_pinned_page_survives_pressure(self, tmp_path):
        pager = _pager(tmp_path, pool_size=2)
        _flushed_pages(pager, 8)
        pager.read_page(0)
        pager.pin(0)
        for page_no in range(1, 8):
            pager.read_page(page_no)
        assert 0 in pager._pool
        pager.unpin(0)
        pager.read_page(1)  # any further pressure may now take page 0
        pager.close()

    def test_dirty_pages_overflow_instead_of_stealing(self, tmp_path):
        pager = _pager(tmp_path, pool_size=1)
        for _ in range(3):
            pager.allocate_page()  # born dirty, never flushed
        assert pager.stats["writes"] == 0, "no-steal violated: dirty write-back"
        assert pager.stats["evictions"] == 0
        assert pager.stats["pool_overflows"] > 0
        assert pager.resident_pages() == 3  # pool grew past its target
        pager.flush()
        assert pager.resident_pages() <= 1  # and shrank back once clean
        pager.close()

    def test_unpin_without_pin_raises(self, tmp_path):
        pager = _pager(tmp_path)
        pager.allocate_page()
        with pytest.raises(StorageError):
            pager.unpin(0)
        pager.close()

    def test_nested_pins_require_matching_unpins(self, tmp_path):
        pager = _pager(tmp_path, pool_size=1)
        _flushed_pages(pager, 4)
        pager.read_page(0)
        pager.pin(0)
        pager.pin(0)
        pager.unpin(0)
        pager.read_page(1)  # pressure: page 0 still pinned once
        assert 0 in pager._pool
        pager.unpin(0)
        pager.close()


class TestPrefetch:
    def test_read_pages_one_io_per_miss_run(self, tmp_path):
        path = str(tmp_path / "pf.heap")
        pager = FilePager(path, pool_size=16)
        for _ in range(8):
            pager.allocate_page()
        pager.close()
        shim = FaultInjector()
        pager = FilePager(path, pool_size=16, io=shim)
        preads_before = sum(1 for op, _ in shim.calls if op == "pread")
        pages = pager.read_pages(0, 8)
        assert len(pages) == 8
        assert sum(1 for op, _ in shim.calls if op == "pread") == preads_before + 1
        assert pager.stats["prefetch_io"] == 1
        assert pager.stats["prefetched"] == 8
        # A second batch is all hits: no further I/O.
        pager.read_pages(0, 8)
        assert pager.stats["prefetch_io"] == 1
        assert pager.stats["hits"] == 8
        pager.close()

    def test_read_pages_pin_survives_small_pool(self, tmp_path):
        # The batch is wider than the pool: every page must still arrive
        # pinned (a later admission never evicts an earlier promise).
        pager = _pager(tmp_path, pool_size=2)
        _flushed_pages(pager, 6)
        pages = pager.read_pages(0, 6, pin=True)
        assert len(pages) == 6
        assert pager.pinned_pages() == 6
        for page_no in range(6):
            pager.unpin(page_no)
        assert pager.pinned_pages() == 0
        assert pager.resident_pages() <= 2
        pager.close()

    def test_read_pages_out_of_bounds(self, tmp_path):
        pager = _pager(tmp_path)
        pager.allocate_page()
        with pytest.raises(StorageError):
            pager.read_pages(0, 2)
        pager.close()

    def test_failed_read_surfaces_as_storage_error(self, tmp_path):
        path = str(tmp_path / "bad.heap")
        pager = FilePager(path)
        pager.allocate_page()
        pager.close()
        shim = FaultInjector(fail_reads=True)
        with pytest.raises(StorageError):
            FilePager(path, io=shim).read_page(0)

    def test_memory_pager_counter_parity(self):
        memory = MemoryPager()
        memory.allocate_page()
        memory.read_page(0)
        assert set(memory.stats) <= {
            "hits", "misses", "evictions", "writes", "prefetched",
        }
        assert memory.stats["hits"] == 1
        assert memory.stats["misses"] == 0


def _heap_with_rows(tmp_path, n=64, size=200, prefetch_pages=8):
    pager = _pager(tmp_path, "h.heap", pool_size=32, prefetch_pages=prefetch_pages)
    heap = HeapFile(pager)
    rids = [heap.insert(bytes([i % 251]) * size) for i in range(n)]
    return heap, rids


class TestFreeSpaceMap:
    def test_insert_reuses_freed_space(self, tmp_path):
        heap, rids = _heap_with_rows(tmp_path, n=100)
        pages_before = heap.page_count()
        assert pages_before > 2
        for rid in rids[: len(rids) // 2]:
            heap.delete(rid)
        heap._free_hint = None  # force the FSM path, not the hint
        for i in range(40):
            heap.insert(bytes([7]) * 200)
        assert heap.page_count() == pages_before, "freed space was not reused"

    def test_fsm_stats_surface_after_build(self, tmp_path):
        heap, rids = _heap_with_rows(tmp_path, n=40)
        assert heap.free_space_stats() == {"fsm_pages": 0, "fsm_free_bytes": 0}
        for rid in rids[:20]:
            heap.delete(rid)
        heap._free_hint = None
        heap.insert(b"z" * 200)  # miss -> lazy FSM build
        stats = heap.free_space_stats()
        assert stats["fsm_pages"] > 0
        assert stats["fsm_free_bytes"] > 0

    def test_scan_pages_range_and_pinning(self, tmp_path):
        heap, _rids = _heap_with_rows(tmp_path, n=100, prefetch_pages=4)
        full = [page_no for page_no, _, _ in heap.scan_pages()]
        assert full == list(range(heap.page_count()))
        partial = [p for p, _, _ in heap.scan_pages(1, 3)]
        assert partial == [1, 2]
        scan = heap.scan_pages()
        next(scan)
        assert heap._pager.pinned_pages() > 0, "scan does not pin its window"
        scan.close()  # abandoning the generator must release every pin
        assert heap._pager.pinned_pages() == 0

    def test_data_version_tracks_every_mutation(self, tmp_path):
        heap, rids = _heap_with_rows(tmp_path, n=4)
        version = heap.data_version
        heap.insert(b"a" * 10)
        assert heap.data_version == version + 1
        heap.update(rids[0], b"b" * 10)
        assert heap.data_version == version + 2
        heap.delete(rids[1])
        assert heap.data_version == version + 3
        heap.vacuum()
        assert heap.data_version == version + 4


class TestVacuum:
    def test_vacuum_compacts_and_preserves_rowids(self, tmp_path):
        heap, rids = _heap_with_rows(tmp_path, n=60)
        for rid in rids[::2]:
            heap.delete(rid)
        survivors = {rid: heap.read(rid) for rid in rids[1::2]}
        stats = heap.vacuum()
        assert stats["compacted"] > 0
        assert stats["reclaimed_bytes"] > 0
        for rid, record in survivors.items():
            assert heap.read(rid) == record
        # Compacted space is immediately insertable: the file cannot grow
        # while the reclaimed bytes cover the new records.
        pages = heap.page_count()
        for _ in range(20):
            heap.insert(b"q" * 200)
        assert heap.page_count() == pages

    def test_vacuum_on_clean_heap_is_a_noop(self, tmp_path):
        heap, _rids = _heap_with_rows(tmp_path, n=10)
        stats = heap.vacuum()
        assert stats["compacted"] == 0
        assert stats["reclaimed_bytes"] == 0

    def test_database_vacuum_rejects_system_tables(self, tmp_path):
        db = Database(str(tmp_path / "db"), fsync=False)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            db.vacuum("_storage")
        assert set(db.vacuum()) == {"t"}
        db.close()


def _memory_table(rows=50):
    schema = TableSchema(
        "t",
        [
            Column("id", ColumnType.INT, nullable=False),
            Column("v", ColumnType.TEXT),
        ],
        primary_key=["id"],
    )
    table = Table(schema, HeapFile(MemoryPager()))
    for i in range(rows):
        table.insert((i, f"val{i}"))
    return table


class TestSegmentCache:
    def test_segment_scan_matches_plain_scan(self):
        table = _memory_table()
        plain = [r for batch in table.rows_batched(8) for r in batch]
        first = [r for batch in table.rows_batched(8, use_segments=True) for r in batch]
        second = [r for batch in table.rows_batched(8, use_segments=True) for r in batch]
        assert first == plain
        assert second == plain
        stats = table.segments.stats
        assert stats["seg_builds"] == 1
        assert stats["seg_hits"] >= 1

    def test_mutation_invalidates_cached_segment(self):
        table = _memory_table(10)
        list(table.rows_batched(100, use_segments=True))
        table.insert((999, "new"))
        rows = [r for batch in table.rows_batched(100, use_segments=True) for r in batch]
        assert (999, "new") in rows
        assert table.segments.stats["seg_invalidated"] == 1

    def test_store_evicts_by_row_budget(self):
        store = SegmentStore(max_rows=10)
        store.put(0, 1, [(i,) for i in range(6)])
        store.put(64, 1, [(i,) for i in range(6)])
        assert store.stats["seg_evictions"] == 1
        assert store.cached_rows() <= 10
        # An oversized run is served but never cached.
        store.put(128, 1, [(i,) for i in range(11)])
        assert store.get(128, 1) is None
        assert store.cached_rows() <= 10

    def test_zero_budget_disables_the_cache(self):
        table = _memory_table(10)
        table.segments.max_rows = 0
        list(table.rows_batched(100, use_segments=True))
        assert table.segments.stats["seg_builds"] == 0

    def test_planner_fingerprint_covers_segment_knob(self):
        on = PlannerConfig(segment_cache=True).fingerprint()
        off = PlannerConfig(segment_cache=False).fingerprint()
        assert on != off

    def test_planner_sets_flag_only_when_vectorized(self):
        from repro.sql.parser import parse_statement

        db = Database()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        statement = parse_statement("SELECT * FROM t")
        plan = db.planner.plan_select(statement)
        scans = [op for op in _walk(plan) if type(op).__name__ == "SeqScan"]
        assert scans and all(s.use_segments for s in scans)
        db.planner_config.vectorized = False
        plan = db.planner.plan_select(statement)
        scans = [op for op in _walk(plan) if type(op).__name__ == "SeqScan"]
        assert scans and not any(s.use_segments for s in scans)
        db.close()


def _walk(op):
    yield op
    for child in op.children():
        yield from _walk(child)


class TestStorageSystemTable:
    def test_storage_rows_reflect_pool_and_segments(self, tmp_path):
        db = Database(str(tmp_path / "db"), fsync=False, pool_size=8)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        for i in range(100):
            db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
        db.execute("SELECT COUNT(*) FROM t")
        db.execute("SELECT COUNT(*) FROM t")
        rows = db.query(
            "SELECT table_name, heap_pages, pool_target, seg_hits, "
            "data_version FROM _storage"
        )
        assert len(rows) == 1
        name, pages, pool_target, seg_hits, version = rows[0]
        assert name == "t"
        assert pages >= 1
        assert pool_target == 8
        assert seg_hits >= 1
        assert version >= 100
        db.close()

    def test_memory_tables_report_null_pool_columns(self):
        db = Database()
        db.execute("CREATE TABLE m (id INT PRIMARY KEY)")
        db.execute("INSERT INTO m VALUES (1)")
        rows = db.query("SELECT table_name, pool_target, resident FROM _storage")
        assert rows == [("m", None, None)]
        db.close()


class TestDatabaseKnobs:
    def test_pool_and_prefetch_reach_the_pager(self, tmp_path):
        db = Database(
            str(tmp_path / "db"), fsync=False, pool_size=7, prefetch_pages=3
        )
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        pager = db.catalog.table("t").heap._pager
        assert pager.pool_size == 7
        assert pager.prefetch_pages == 3
        db.close()

    def test_segment_cache_rows_zero_disables_store(self, tmp_path):
        db = Database(str(tmp_path / "db"), fsync=False, segment_cache_rows=0)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT COUNT(*) FROM t")
        db.execute("SELECT COUNT(*) FROM t")
        assert db.metrics_snapshot()["segments"]["seg_builds"] == 0
        db.close()
