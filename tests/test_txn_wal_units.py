"""Direct unit tests of TransactionManager and WriteAheadLog."""

import os

import pytest

from repro.errors import StorageError, TransactionError
from repro.relational.heap import HeapFile
from repro.relational.pager import MemoryPager
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.txn import TransactionManager
from repro.relational.types import ColumnType
from repro.relational.wal import WriteAheadLog


def make_table():
    schema = TableSchema(
        "t",
        [Column("k", ColumnType.INT), Column("v", ColumnType.TEXT)],
        primary_key=["k"],
    )
    return Table(schema, HeapFile(MemoryPager()))


class TestTransactionManagerUnit:
    def test_active_flag(self):
        txn = TransactionManager()
        assert not txn.active
        txn.begin()
        assert txn.active
        txn.commit()
        assert not txn.active

    def test_double_begin(self):
        txn = TransactionManager()
        txn.begin()
        with pytest.raises(TransactionError):
            txn.begin()

    def test_commit_fires_hooks(self):
        txn = TransactionManager()
        fired = []
        txn.on_commit.append(lambda: fired.append("c"))
        txn.on_rollback.append(lambda: fired.append("r"))
        txn.begin()
        txn.commit()
        txn.begin()
        txn.rollback()
        assert fired == ["c", "r"]

    def test_undo_insert(self):
        table = make_table()
        txn = TransactionManager()
        txn.begin()
        rid = table.insert((1, "x"))
        txn.log_insert(table, rid)
        txn.rollback()
        assert table.count() == 0

    def test_undo_delete(self):
        table = make_table()
        rid = table.insert((1, "x"))
        txn = TransactionManager()
        txn.begin()
        row = table.delete(rid)
        txn.log_delete(table, row)
        txn.rollback()
        assert list(table.rows()) == [(1, "x")]

    def test_undo_update(self):
        table = make_table()
        rid = table.insert((1, "old"))
        txn = TransactionManager()
        txn.begin()
        new_rid, old_row = table.update(rid, (1, "new"))
        txn.log_update(table, new_rid, old_row)
        txn.rollback()
        assert list(table.rows()) == [(1, "old")]

    def test_logging_inactive_is_noop(self):
        table = make_table()
        txn = TransactionManager()
        rid = table.insert((1, "x"))
        txn.log_insert(table, rid)  # no crash, nothing recorded
        assert txn.mark() == 0

    def test_rollback_to_mark(self):
        table = make_table()
        txn = TransactionManager()
        txn.begin()
        rid1 = table.insert((1, "a"))
        txn.log_insert(table, rid1)
        mark = txn.mark()
        rid2 = table.insert((2, "b"))
        txn.log_insert(table, rid2)
        txn.rollback_to(mark)
        assert [row[0] for row in table.rows()] == [1]
        txn.commit()
        assert [row[0] for row in table.rows()] == [1]

    def test_rollback_to_outside_txn(self):
        txn = TransactionManager()
        with pytest.raises(TransactionError):
            txn.rollback_to(0)

    def test_note_rid_moved(self):
        table = make_table()
        txn = TransactionManager()
        txn.begin()
        rid = table.insert((1, "short"))
        txn.log_insert(table, rid)
        # Simulate the row moving pages: the log entry must follow.
        from repro.relational.heap import RowId

        new_rid = RowId(99, 0)
        txn.note_rid_moved(table, rid, new_rid)
        assert txn._entries[0].rid == new_rid


class TestWriteAheadLogUnit:
    def make(self, tmp_path, fsync=False):
        return WriteAheadLog(str(tmp_path / "wal.log"), fsync=fsync)

    def test_pending_then_commit(self, tmp_path):
        wal = self.make(tmp_path)
        wal.log_insert("t", (1, "a"))
        assert wal.pending_ops == 1
        wal.commit()
        assert wal.pending_ops == 0
        assert wal.stats == {
            "commits": 1,
            "ops": 1,
            "bytes": wal.stats["bytes"],
            "fsyncs": 0,  # fsync=False in make()
            "appends": 1,
        }
        wal.close()

    def test_empty_commit_writes_nothing(self, tmp_path):
        wal = self.make(tmp_path)
        wal.commit()
        assert wal.stats["commits"] == 0
        wal.close()

    def test_discard_pending(self, tmp_path):
        wal = self.make(tmp_path)
        wal.log_insert("t", (1, "a"))
        wal.discard_pending()
        wal.commit()
        assert wal.stats["ops"] == 0
        wal.close()

    def test_replay_only_committed(self, tmp_path):
        wal = self.make(tmp_path)
        wal.log_insert("t", (1, "a"))
        wal.commit()
        wal.log_insert("t", (2, "b"))  # never committed
        seen = []
        wal.replay(seen.append)
        assert [op["row"] for op in seen] == [[1, "a"]]
        wal.close()

    def test_replay_groups_in_order(self, tmp_path):
        wal = self.make(tmp_path)
        wal.log_insert("t", (1, "a"))
        wal.log_update("t", (1, "a"), (1, "b"))
        wal.commit()
        wal.log_delete("t", (1, "b"))
        wal.commit()
        kinds = []
        wal.replay(lambda op: kinds.append(op["t"]))
        assert kinds == ["insert", "update", "delete"]
        wal.close()

    def test_truncate(self, tmp_path):
        wal = self.make(tmp_path)
        wal.log_insert("t", (1, "a"))
        wal.commit()
        wal.truncate()
        seen = []
        wal.replay(seen.append)
        assert seen == []
        assert os.path.getsize(wal.path) == 0
        wal.close()

    def test_torn_tail_tolerated(self, tmp_path):
        wal = self.make(tmp_path)
        wal.log_insert("t", (1, "a"))
        wal.commit()
        with open(wal.path, "ab") as fh:
            fh.write(b'{"t": "insert", "tab": "t", "r')  # torn write
        seen = []
        wal.replay(seen.append)
        assert len(seen) == 1
        wal.close()

    def test_corruption_before_commit_raises(self, tmp_path):
        wal = self.make(tmp_path)
        with open(wal.path, "ab") as fh:
            fh.write(b"garbage-line\n")
            fh.write(b'{"t": "commit"}\n')
        with pytest.raises(StorageError):
            wal.replay(lambda op: None)
        wal.close()

    def test_closed_wal_raises(self, tmp_path):
        wal = self.make(tmp_path)
        wal.close()
        with pytest.raises(StorageError):
            wal.commit()
        with pytest.raises(StorageError):
            wal.truncate()

    def test_discard_from_mark(self, tmp_path):
        wal = self.make(tmp_path)
        wal.log_insert("t", (1, "a"))
        mark = wal.mark()
        wal.log_insert("t", (2, "b"))
        wal.discard_pending_from(mark)
        wal.commit()
        assert wal.stats["ops"] == 1
        wal.close()
