"""Tests for the repro.obs observability subsystem.

Covers: registry instrument math and JSON export, span nesting and
thread-local isolation, the slow log, EXPLAIN ANALYZE end-to-end (through
both Database.execute and the SQL window), Database.metrics_snapshot(),
and the metrics.py satellite fixes (Timer.elapsed, KeystrokeMeter
accumulation).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.metrics import KeystrokeMeter, Timer
from repro.obs import (
    Registry,
    SlowLog,
    Tracer,
    current_span,
    get_registry,
    set_registry,
)
from repro.relational.database import Database


@pytest.fixture()
def registry():
    """A private default registry per test, restoring the old one after."""
    fresh = Registry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def make_people_db(registry=None) -> Database:
    db = Database(obs=registry)
    db.execute("CREATE TABLE people (id INT PRIMARY KEY, name TEXT, age INT)")
    for i in range(20):
        db.insert("people", {"id": i, "name": f"p{i}", "age": 20 + (i % 5)})
    return db


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_math(self):
        registry = Registry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("x") is counter  # same instrument by name
        assert registry.counter_value("x") == 5
        assert registry.counter_value("missing") == 0

    def test_gauge(self):
        registry = Registry()
        gauge = registry.gauge("pool")
        gauge.set(7)
        gauge.add(-2)
        assert gauge.value == 5

    def test_histogram_summary_and_percentiles(self):
        registry = Registry()
        histogram = registry.histogram("latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.total == pytest.approx(5050.0)
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.min == 1.0
        assert histogram.max == 100.0
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(95) == pytest.approx(95.05)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p99"] == pytest.approx(99.01)

    def test_empty_histogram(self):
        histogram = Registry().histogram("empty")
        assert histogram.mean == 0.0
        assert histogram.percentile(50) is None
        assert histogram.summary()["min"] is None

    def test_disabled_registry_hands_out_noops(self):
        registry = Registry(enabled=False)
        counter = registry.counter("x")
        counter.inc(10)
        registry.add("x", 10)
        registry.observe("h", 1.0)
        assert registry.snapshot()["counters"] == {}
        assert registry.snapshot()["histograms"] == {}

    def test_runtime_toggle_via_name_keyed_helpers(self):
        registry = Registry()
        registry.add("x")
        registry.disable()
        registry.add("x")
        registry.enable()
        registry.add("x")
        assert registry.counter_value("x") == 2

    def test_json_export_round_trip(self):
        registry = Registry()
        registry.add("c", 3)
        registry.gauge("g").set(1.5)
        registry.observe("h", 2.0)
        registry.observe("h", 4.0)
        doc = json.loads(registry.to_json())
        assert doc["counters"] == {"c": 3}
        assert doc["gauges"] == {"g": 1.5}
        assert doc["histograms"]["h"]["count"] == 2
        assert doc["histograms"]["h"]["mean"] == pytest.approx(3.0)

    def test_reset(self):
        registry = Registry()
        registry.add("c")
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_default_registry_swap(self, registry):
        assert get_registry() is registry
        get_registry().add("visible")
        assert registry.counter_value("visible") == 1


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_durations_and_registry(self):
        registry = Registry()
        tracer = Tracer(registry)
        with tracer.span("work") as span:
            time.sleep(0.002)
        assert span.duration_ms >= 1.0
        assert registry.histogram("span.work").count == 1

    def test_nested_spans_share_one_stack_across_tracers(self):
        registry = Registry()
        outer_tracer = Tracer(registry)
        inner_tracer = Tracer(registry)  # a different layer's tracer
        with outer_tracer.span("form.save") as outer:
            with inner_tracer.span("db.execute") as inner:
                assert current_span() is inner
                assert inner.path == "form.save/db.execute"
                assert inner.depth == 1
            assert current_span() is outer
        assert current_span() is None
        assert outer.path == "form.save"

    def test_span_records_exception_and_unwinds(self):
        tracer = Tracer(Registry())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert current_span() is None
        assert tracer.finished[-1].tags["error"] == "ValueError"

    def test_thread_local_isolation(self):
        tracer = Tracer(Registry())
        seen = {}

        def worker():
            # The main thread's active span must not leak in here.
            seen["parent"] = current_span()
            with tracer.span("child") as span:
                seen["path"] = span.path

        with tracer.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent"] is None
        assert seen["path"] == "child"  # no main-span/ prefix

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(Registry())
        tracer.enabled = False
        with tracer.span("x") as span:
            assert current_span() is None
        assert span.duration_ms == 0.0
        assert len(tracer.finished) == 0

    def test_recent_is_json_serialisable(self):
        tracer = Tracer(Registry())
        with tracer.span("a", {"k": 1}):
            pass
        json.dumps(tracer.recent())
        assert tracer.recent()[0]["name"] == "a"


# ---------------------------------------------------------------------------
# Slow log
# ---------------------------------------------------------------------------


class TestSlowLog:
    def test_threshold_filters(self):
        log = SlowLog(threshold_ms=10.0)
        assert not log.record("fast", 5.0)
        assert log.record("slow", 15.0)
        assert [e["name"] for e in log.entries()] == ["slow"]

    def test_ring_capacity_and_dropped(self):
        log = SlowLog(threshold_ms=0.0, capacity=3)
        for i in range(5):
            log.record(f"op{i}", 1.0)
        assert len(log) == 3
        assert log.dropped == 2
        assert [e["name"] for e in log.entries()] == ["op2", "op3", "op4"]

    def test_dump_and_clear(self):
        log = SlowLog(threshold_ms=0.0)
        log.record("op", 12.5, tags={"rows": 3})
        lines = log.dump()
        assert len(lines) == 1
        assert "op" in lines[0] and "rows=3" in lines[0]
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_tracer_feeds_slow_log(self):
        log = SlowLog(threshold_ms=0.0)
        tracer = Tracer(Registry(), slow_log=log)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in log.entries()]
        assert names == ["outer/inner", "outer"]  # full paths, inner first

    def test_database_slow_log_api(self, registry):
        db = make_people_db()
        db.set_slow_threshold(0.0)
        db.execute("SELECT COUNT(*) FROM people")
        entries = db.slow_operations()
        assert any(e["name"] == "db.execute" for e in entries)
        json.dumps(entries)
        snapshot = db.metrics_snapshot()
        assert snapshot["slow_log"]["threshold_ms"] == 0.0
        assert snapshot["slow_log"]["entries"] == len(entries)

    def test_database_threshold_filters_fast_statements(self, registry):
        db = make_people_db()
        db.set_slow_threshold(10_000.0)
        db.execute("SELECT COUNT(*) FROM people")
        assert db.slow_operations() == []


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class TestExplainAnalyze:
    def test_operator_row_counts(self, registry):
        db = make_people_db()
        result = db.execute(
            "EXPLAIN ANALYZE SELECT name FROM people WHERE age = 21"
        )
        assert result.plan is not None
        lines = result.plan.splitlines()
        # 20 people, ages cycle 20..24 -> exactly 4 rows match age=21.
        assert result.rowcount == 4
        project_line = next(l for l in lines if l.startswith("Project"))
        assert "rows=4" in project_line and "loops=1" in project_line
        scan_line = next(l for l in lines if "Scan" in l)
        assert "time=" in scan_line
        assert any(l.startswith("Planning Time:") for l in lines)
        assert any(l.startswith("Execution Time:") for l in lines)

    def test_join_rows_attributed_per_operator(self, registry):
        db = Database()
        db.execute("CREATE TABLE m (id INT PRIMARY KEY)")
        db.execute("CREATE TABLE d (id INT PRIMARY KEY, mid INT)")
        for i in range(3):
            db.insert("m", {"id": i})
        for j in range(9):
            db.insert("d", {"id": j, "mid": j % 3})
        result = db.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM m JOIN d ON m.id = d.mid"
        )
        join_line = next(l for l in result.plan.splitlines() if "Join" in l)
        assert "rows=9" in join_line
        agg_line = next(
            l for l in result.plan.splitlines() if l.lstrip().startswith("Aggregate")
        )
        assert "rows=1" in agg_line

    def test_plain_explain_unchanged(self, registry):
        db = make_people_db()
        result = db.execute("EXPLAIN SELECT name FROM people")
        assert "rows=" not in result.plan
        assert "Execution Time" not in result.plan

    def test_explain_analyze_does_not_slow_later_queries(self, registry):
        """Instrumentation is per-instance: a later plain SELECT must not
        run through counting wrappers."""
        db = make_people_db()
        db.execute("EXPLAIN ANALYZE SELECT * FROM people")
        result = db.execute("SELECT COUNT(*) FROM people")
        assert result.scalar() == 20

    def test_explain_analyze_from_sql_window(self, registry):
        from repro.core.app import WowApp
        from repro.windows.events import KeyEvent

        db = make_people_db()
        app = WowApp(db, 80, 24)
        app.open_sql_window()
        for ch in "EXPLAIN ANALYZE SELECT name FROM people":
            app.send_key(KeyEvent(ch))
        app.send_key(KeyEvent("ENTER"))
        screen = app.screen_text()
        assert "rows=20" in screen
        assert "Execution Time" in screen


# ---------------------------------------------------------------------------
# metrics_snapshot
# ---------------------------------------------------------------------------


class TestMetricsSnapshot:
    def test_covers_every_layer_and_is_json(self, registry, tmp_path):
        db = Database(path=str(tmp_path / "db"), obs=registry)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        db.execute("CREATE INDEX iv ON t (v)")
        for i in range(10):
            db.insert("t", {"id": i, "v": f"v{i}"})
        db.execute("BEGIN")
        db.insert("t", {"id": 100, "v": "x"})
        db.execute("ROLLBACK")
        db.query("SELECT * FROM t WHERE id = 3")
        db.checkpoint()

        snapshot = db.metrics_snapshot()
        json.dumps(snapshot)  # must be JSON-serialisable end to end

        assert snapshot["statements"]["inserts"] == 11
        assert snapshot["pager"]["writes"] > 0
        assert snapshot["pager"]["fsyncs"] >= 1
        assert snapshot["wal"]["commits"] >= 10
        assert snapshot["wal"]["fsyncs"] >= 1
        assert snapshot["btree"]["trees"] >= 1
        assert snapshot["btree"]["node_visits"] > 0
        assert snapshot["txn"]["begins"] >= 11
        assert snapshot["txn"]["rollbacks"] == 1
        assert snapshot["planner"]["plans"] >= 1
        assert snapshot["planner"]["index_eq_scans"] >= 1
        assert "span.db.execute" in snapshot["registry"]["histograms"]
        db.close()

    def test_forms_layer_metrics_flow_into_snapshot(self, registry):
        from repro.core.app import WowApp

        db = make_people_db()
        app = WowApp(db, 80, 24)
        app.open_form("people")
        app.send_keys("<DOWN><DOWN><F5>")
        snapshot = db.metrics_snapshot()
        counters = snapshot["registry"]["counters"]
        assert counters["forms.refreshes"] >= 2  # open + F5
        assert counters["windows.frames"] >= 3
        assert counters["windows.cells_transmitted"] > 0
        histograms = snapshot["registry"]["histograms"]
        assert histograms["span.form.open"]["count"] == 1
        assert histograms["span.form.refresh"]["count"] >= 2
        assert histograms["span.app.key"]["count"] == 3
        assert histograms["windows.frame_cells"]["count"] >= 3

    def test_form_save_span_nests_db_execute(self, registry):
        """The cross-layer story: a form save's db work nests under it."""
        from repro.forms.generate import generate_form
        from repro.forms.runtime import FormController

        db = make_people_db()
        controller = FormController(db, generate_form(db, "people"))
        controller.begin_edit()
        controller.set_field("age", "99")
        assert controller.save()
        paths = [s["path"] for s in db.tracer.recent()]
        assert "form.save" in paths
        assert any(p.startswith("form.save/form.refresh") for p in paths)

    def test_debug_window_renders_metrics(self, registry):
        from repro.core.app import WowApp

        db = make_people_db()
        app = WowApp(db, 80, 24)
        app.open_form("people")
        app.send_keys("<F11>")
        app.expect_on_screen("Metrics")
        app.expect_on_screen("statements")
        app.send_keys("<F11>")  # closes again
        assert app._metrics_window is None

    def test_private_registry_isolates_databases(self):
        private = Registry()
        db = make_people_db(registry=private)
        db.query("SELECT * FROM people")
        assert "span.db.execute" in db.metrics_snapshot()["registry"]["histograms"]
        assert db.obs is private


# ---------------------------------------------------------------------------
# metrics.py satellites
# ---------------------------------------------------------------------------


class TestMetricsSatellites:
    def test_timer_elapsed_does_not_mutate(self):
        timer = Timer().start()
        time.sleep(0.002)
        first = timer.elapsed()
        time.sleep(0.002)
        second = timer.elapsed()
        assert second > first  # keeps growing: origin never resets
        assert timer.laps == []  # and no lap was recorded

    def test_timer_lap_restarts_lap_clock_but_not_elapsed(self):
        timer = Timer().start()
        time.sleep(0.002)
        lap = timer.lap()
        time.sleep(0.002)
        assert lap > 0
        assert timer.elapsed() > lap  # total keeps counting past the lap
        assert len(timer.laps) == 1

    def test_timer_errors_before_start(self):
        with pytest.raises(RuntimeError):
            Timer().lap()
        with pytest.raises(RuntimeError):
            Timer().elapsed()

    def test_keystroke_meter_repeated_task_accumulates(self):
        meter = KeystrokeMeter()
        meter.start_task("edit")
        meter.record(3)
        assert meter.end_task() == 3
        meter.start_task("edit")  # same name again: must NOT reset
        meter.record(2)
        assert meter.end_task() == 5
        assert meter.by_task["edit"] == 5

    def test_keystroke_meter_fresh_task_starts_at_zero(self):
        meter = KeystrokeMeter()
        meter.start_task("a")
        meter.record(4)
        meter.end_task()
        meter.start_task("b")
        meter.record(1)
        assert meter.by_task == {"a": 4, "b": 1}
        assert meter.total == 5
