"""Tests for F8 sort cycling, the curses key translation, and two apps
sharing one database (multi-terminal 1983 style)."""

import pytest

from repro.core import WowApp
from repro.forms import FormController, generate_form
from repro.windows.curses_driver import translate_key
from repro.windows.events import Key


class TestSortCycling:
    def test_f8_cycles_columns(self, company):
        controller = FormController(company, generate_form(company, "emp"))
        assert controller.spec.order_by == ["id"]
        controller.cycle_sort()
        assert controller.spec.order_by == ["name"]
        assert controller.field_texts["name"] == "ada"  # first alphabetically

    def test_f8_wraps_around(self, company):
        controller = FormController(company, generate_form(company, "emp"))
        for _ in range(5):  # id -> name -> dept_id -> salary -> hired -> id
            controller.cycle_sort()
        assert controller.spec.order_by == ["id"]

    def test_sort_by_salary_orders_rowset(self, company):
        controller = FormController(company, generate_form(company, "emp"))
        for _ in range(3):
            controller.cycle_sort()
        assert controller.spec.order_by == ["salary"]
        salaries = [row[3] for row in controller.rows]
        assert salaries == sorted(salaries)

    def test_f8_by_key(self, company):
        app = WowApp(company, width=70, height=18)
        form = app.open_form("emp")
        app.send_keys("<F8>")
        assert "ordered by name" in form.controller.message


class TestCursesTranslation:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("KEY_UP", Key.UP),
            ("KEY_NPAGE", Key.PGDN),
            ("KEY_F(2)", Key.F2),
            ("\n", Key.ENTER),
            ("\t", Key.TAB),
            ("\x1b", Key.ESC),
            ("\x7f", Key.BACKSPACE),
            ("a", "a"),
            ("Z", "Z"),
        ],
    )
    def test_known_keys(self, name, expected):
        event = translate_key(name)
        assert event is not None and event.key == expected

    def test_unknown_ignored(self):
        assert translate_key("KEY_MOUSE") is None
        assert translate_key("\x00") is None


class TestSharedDatabaseSessions:
    def test_two_apps_one_world(self, company):
        """Two terminals, one database: edits in one appear in the other."""
        clerk_app = WowApp(company, width=60, height=16)
        boss_app = WowApp(company, width=60, height=16)
        clerk_form = clerk_app.open_form("emp")
        boss_form = boss_app.open_form("emp")

        # The clerk gives ada a raise.
        clerk_app.send_keys("<F2><TAB><TAB><TAB>199<F2>")
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 199.0

        # The boss's window still shows the stale value until requery.
        assert boss_form.controller.field_texts["salary"] == "100"
        boss_app.send_keys("<F5>")
        assert boss_form.controller.field_texts["salary"] == "199"

    def test_sessions_have_independent_meters(self, company):
        app_a = WowApp(company, width=60, height=16)
        app_b = WowApp(company, width=60, height=16)
        app_a.open_form("emp")
        app_b.open_form("emp")
        app_a.send_keys("<DOWN><DOWN>")
        app_b.send_keys("<DOWN>")
        assert app_a.keys.total == 2
        assert app_b.keys.total == 1

    def test_delete_in_one_session_counts_in_other(self, company):
        app_a = WowApp(company, width=60, height=16)
        app_b = WowApp(company, width=60, height=16)
        form_b = app_b.open_form("emp")
        app_a.open_form("emp")
        app_a.send_keys("<END><F6>")  # delete dan
        app_b.send_keys("<F5>")
        assert form_b.controller.record_count == 3
