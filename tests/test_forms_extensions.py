"""Tests for forms extensions: painted forms, pick-list popups, the help
window, and the report writer."""

import pytest

from repro.core import WowApp
from repro.errors import FormSpecError, WowError
from repro.forms.paint import paint_form
from repro.forms.picklist import PickListWindow
from repro.relational.database import Database
from repro.reports import ReportSpec, run_report
from repro.windows.events import Key, KeyEvent
from repro.windows.geometry import Rect


TEMPLATE = """
Employee no: [id    ]    Dept: [dept_id]
Full name:   [name                     ]
Salary:      [salary    ]
"""


class TestPaintedForms:
    def test_parse_positions_and_widths(self, company):
        spec = paint_form(company, "emp", TEMPLATE)
        assert spec.painted
        id_field = spec.field_for("id")
        assert id_field.x == 13 and id_field.row == 0 and id_field.width == 6
        name_field = spec.field_for("name")
        assert name_field.row == 1 and name_field.width == 25

    def test_decorations_extracted(self, company):
        spec = paint_form(company, "emp", TEMPLATE)
        texts = [text for _x, _row, text in spec.decorations]
        assert any("Employee no:" in t for t in texts)
        assert any("Dept:" in t for t in texts)

    def test_metadata_matches_generated(self, company):
        spec = paint_form(company, "emp", TEMPLATE)
        assert spec.field_for("id").in_key
        assert spec.field_for("dept_id").pick_list is not None
        assert spec.order_by == ["id"]

    def test_unknown_column_rejected(self, company):
        with pytest.raises(FormSpecError):
            paint_form(company, "emp", "[ghost]")

    def test_duplicate_marker_rejected(self, company):
        with pytest.raises(FormSpecError):
            paint_form(company, "emp", "[id] [id]")

    def test_no_markers_rejected(self, company):
        with pytest.raises(FormSpecError):
            paint_form(company, "emp", "just text")

    def test_painted_form_runs(self, company):
        spec = paint_form(company, "emp", TEMPLATE, title="Card")
        app = WowApp(company, width=60, height=12)
        app.open_form("emp", spec=spec)
        app.expect_on_screen("Employee no:")
        app.expect_on_screen("ada")
        # Edit through the painted layout: F2, TAB past dept to name... order
        # is document order: id, dept_id, name, salary.
        app.send_keys("<F2><TAB><TAB><TAB>175<F2>")
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 175.0

    def test_painted_form_on_view(self, company):
        spec = paint_form(company, "eng_emps", "No [id   ] Pay [salary  ]")
        app = WowApp(company, width=50, height=10)
        form = app.open_form("eng_emps", spec=spec)
        assert form.controller.record_count == 2


class TestPickListPopup:
    @pytest.fixture
    def app(self, company):
        return WowApp(company, width=70, height=20)

    def test_f7_opens_and_enter_picks(self, app, company):
        form = app.open_form("emp")
        app.send_keys("<F2><TAB><TAB><F7>")  # focus dept_id, open popup
        app.expect_on_screen("sales")
        app.send_keys("<DOWN><ENTER>")  # choose dept 2
        assert form.controller.field_texts["dept_id"] == "2"
        app.send_keys("<F2>")
        assert company.query("SELECT dept_id FROM emp WHERE id = 10") == [(2,)]

    def test_escape_cancels_popup(self, app, company):
        form = app.open_form("emp")
        app.send_keys("<F2><TAB><TAB><F7><ESC>")
        assert form.controller.field_texts["dept_id"] == "1"
        assert app.active_window is form

    def test_f7_on_non_pick_field_ignored(self, app):
        form = app.open_form("emp")
        app.send_keys("<F2><F7>")  # id field has no pick list
        assert app.active_window is form

    def test_f7_in_browse_ignored(self, app):
        form = app.open_form("emp")
        app.send_keys("<TAB><TAB><F7>")  # browse mode: not editable
        assert app.active_window is form

    def test_popup_window_standalone(self):
        chosen = []
        popup = PickListWindow(
            [(1, "one"), (2, "two")],
            on_choice=chosen.append,
            on_cancel=lambda: chosen.append("cancel"),
        )
        popup.handle_key(KeyEvent(Key.DOWN))
        popup.handle_key(KeyEvent(Key.ENTER))
        assert chosen == [2]


class TestHelpWindow:
    def test_toggle(self, company):
        app = WowApp(company, width=70, height=20)
        app.open_form("emp")
        app.send_keys("<F9>")
        app.expect_on_screen("pick list")
        app.send_keys("<F9>")
        with pytest.raises(WowError):
            app.expect_on_screen("pick list")

    def test_help_does_not_eat_form_state(self, company):
        app = WowApp(company, width=70, height=20)
        form = app.open_form("emp")
        app.send_keys("<DOWN><F9><F9>")
        assert form.controller.position == 1


@pytest.fixture
def salaries(db):
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, dept INT, pay FLOAT)"
    )
    db.execute(
        "INSERT INTO emp VALUES "
        "(1, 'a', 1, 10.0), (2, 'b', 1, 20.0), (3, 'c', 2, 30.0), (4, 'd', 2, NULL)"
    )
    return db


class TestReports:
    def test_grouped_report_with_totals(self, salaries):
        spec = ReportSpec(
            title="Pay",
            source="emp",
            columns=["name", "pay"],
            group_by="dept",
            totals=["pay"],
        )
        text = run_report(salaries, spec)
        assert "dept = 1" in text and "dept = 2" in text
        assert "subtotal (2)" in text
        assert "30" in text  # dept 1 subtotal
        assert "TOTAL (4)" in text
        assert "60" in text  # grand total (NULL ignored)

    def test_ungrouped_report(self, salaries):
        spec = ReportSpec(title="All", source="emp", columns=["id", "name"])
        text = run_report(salaries, spec)
        assert "TOTAL (4)" in text
        assert "subtotal" not in text

    def test_where_filter(self, salaries):
        spec = ReportSpec(
            title="Rich", source="emp", columns=["name", "pay"], where="pay > 15"
        )
        text = run_report(salaries, spec)
        assert "TOTAL (2)" in text

    def test_pagination(self, salaries):
        for i in range(5, 60):
            salaries.insert("emp", {"id": i, "name": f"e{i}", "dept": 1, "pay": 1.0})
        spec = ReportSpec(
            title="Long", source="emp", columns=["id", "name"], page_length=15
        )
        text = run_report(salaries, spec)
        assert "page 1" in text and "page 2" in text
        assert "\f" in text  # form feed between pages

    def test_report_over_view(self, salaries):
        salaries.execute("CREATE VIEW d1 AS SELECT name, pay FROM emp WHERE dept = 1")
        spec = ReportSpec(title="D1", source="d1", columns=["name", "pay"], totals=["pay"])
        text = run_report(salaries, spec)
        assert "TOTAL (2)" in text

    def test_bad_total_column_rejected(self, salaries):
        with pytest.raises(WowError):
            run_report(
                salaries,
                ReportSpec(title="x", source="emp", columns=["name"], totals=["name"]),
            )
        with pytest.raises(WowError):
            run_report(
                salaries,
                ReportSpec(title="x", source="emp", columns=["name"], totals=["pay"]),
            )

    def test_unknown_column_rejected(self, salaries):
        with pytest.raises(WowError):
            run_report(
                salaries, ReportSpec(title="x", source="emp", columns=["ghost"])
            )
