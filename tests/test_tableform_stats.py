"""Tests for the tabular (datasheet) form, F10 window mode, and ANALYZE."""

import pytest

from repro.core import WowApp
from repro.relational.database import Database
from repro.relational.stats import analyze_table
from repro.windows.geometry import Rect


@pytest.fixture
def app(company):
    return WowApp(company, width=70, height=18)


@pytest.fixture
def table_form(app):
    return app.open_table_form("emp", Rect(0, 0, 65, 12)), app


class TestTableForm:
    def test_shows_all_rows(self, table_form):
        form, app = table_form
        assert len(form.rows) == 4
        app.expect_on_screen("ada")
        app.expect_on_screen("dan")

    def test_cursor_navigation(self, table_form):
        form, app = table_form
        app.send_keys("<DOWN><RIGHT>")
        assert form.cursor_row == 1 and form.cursor_col == 1
        app.send_keys("<END>")
        assert form.cursor_row == 3
        app.send_keys("<HOME><LEFT>")
        assert form.cursor_row == 0 and form.cursor_col == 0

    def test_cell_edit_writes_through(self, table_form, company):
        form, app = table_form
        app.send_keys("<RIGHT>zoe<ENTER>")  # name of ada -> zoe
        assert company.query("SELECT name FROM emp WHERE id = 10") == [("zoe",)]
        assert "updated" in form.message

    def test_cell_edit_escape_cancels(self, table_form, company):
        form, app = table_form
        app.send_keys("<RIGHT>zzz<ESC>")
        assert company.query("SELECT name FROM emp WHERE id = 10") == [("ada",)]

    def test_cell_edit_bad_value_reports(self, table_form, company):
        form, app = table_form
        app.send_keys("<TAB><TAB><TAB>oops<ENTER>")  # salary = 'oops'
        assert "error" in form.message
        assert company.query("SELECT salary FROM emp WHERE id = 10") == [(100.0,)]

    def test_insert_flow(self, table_form, company):
        form, app = table_form
        app.send_keys("<F3>55<ENTER><RIGHT>new<ENTER><F2>")
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        assert company.query("SELECT name FROM emp WHERE id = 55") == [("new",)]

    def test_insert_abandon(self, table_form, company):
        form, app = table_form
        app.send_keys("<F3>55<ENTER><ESC>")
        assert form.pending_insert is None
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 4

    def test_insert_constraint_error(self, table_form, company):
        form, app = table_form
        app.send_keys("<F3>10<ENTER><RIGHT>dup<ENTER><F2>")  # duplicate PK
        assert "error" in form.message
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 4

    def test_delete_row(self, table_form, company):
        form, app = table_form
        app.send_keys("<END><F6>")
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_delete_respects_fk(self, app, company):
        form = app.open_table_form("dept", Rect(0, 0, 50, 10))
        app.send_keys("<F6>")  # dept 1 has employees
        assert "error" in form.message

    def test_works_on_view(self, app, company):
        form = app.open_table_form("eng_emps", Rect(0, 0, 60, 10))
        assert len(form.rows) == 2
        app.send_keys("<TAB><TAB>77<ENTER>")  # salary of ada through the view
        assert company.query("SELECT salary FROM emp WHERE id = 10") == [(77.0,)]

    def test_f5_refresh(self, table_form, company):
        form, app = table_form
        company.execute("DELETE FROM emp WHERE id = 13")
        app.send_keys("<F5>")
        assert len(form.rows) == 3


class TestWindowCommandMode:
    def test_move_window(self, app):
        form = app.open_form("emp", x=5, y=2)
        app.send_keys("<F10><RIGHT><RIGHT><DOWN><ENTER>")
        assert form.rect.x == 7 and form.rect.y == 3

    def test_resize_window(self, app):
        form = app.open_form("emp", x=0, y=0)
        original = form.rect
        app.send_keys("<F10>+.<ENTER>")
        assert form.rect.width == original.width + 2
        assert form.rect.height == original.height + 1

    def test_too_small_resize_ignored(self, app):
        form = app.open_form("emp", x=0, y=0)
        app.send_keys("<F10>" + "," * 30 + "<ENTER>")
        assert form.rect.height >= 3

    def test_keys_do_not_reach_form_in_wm_mode(self, app):
        form = app.open_form("emp", x=0, y=0)
        app.send_keys("<F10><DOWN><DOWN><ESC>")
        assert form.controller.position == 0  # DOWNs moved the window instead

    def test_tile_key(self, app):
        a = app.open_form("emp", x=0, y=0)
        b = app.open_form("dept", x=5, y=5)
        app.send_keys("<F10>t<ENTER>")
        assert a.rect.x == 0 and b.rect.x == app.wm.renderer.width // 2


class TestAnalyze:
    def test_analyze_table_stats(self, company):
        stats = analyze_table(company.catalog.table("emp"))
        assert stats.row_count == 4
        assert stats.columns["dept_id"].null_count == 1
        assert stats.columns["dept_id"].n_distinct == 2
        assert stats.columns["salary"].min_value == 75.0
        assert stats.columns["salary"].max_value == 120.0

    def test_analyze_statement(self, company):
        result = company.execute("ANALYZE")
        assert result.rowcount == 2  # dept, emp
        assert "emp" in company.planner.stats
        assert company.planner.stats["emp"].row_count == 4

    def test_analyze_single_table(self, company):
        company.execute("ANALYZE dept")
        assert list(company.planner.stats) == ["dept"]

    def test_selectivity_estimates(self, company):
        from repro.relational import expr as E

        company.execute("ANALYZE emp")
        stats = company.planner.stats["emp"]
        eq = E.BinOp("=", E.ColumnRef("dept_id"), E.Literal(1))
        assert stats.selectivity(eq) == pytest.approx(0.5)  # 2 distinct values
        rng = E.BinOp(">", E.ColumnRef("salary"), E.Literal(100.0))
        assert stats.selectivity(rng) == pytest.approx(1 / 3)
        isnull = E.IsNull(E.ColumnRef("dept_id"))
        assert stats.selectivity(isnull) == pytest.approx(0.25)

    def test_estimate_rows_conjunction(self, company):
        from repro.relational import expr as E

        company.execute("ANALYZE emp")
        stats = company.planner.stats["emp"]
        conjuncts = [
            E.BinOp("=", E.ColumnRef("dept_id"), E.Literal(1)),
            E.BinOp(">", E.ColumnRef("salary"), E.Literal(100.0)),
        ]
        # Raw product is 4 * 0.5 * (1/3) = 0.67; the public estimate is
        # normalized through clamp_rows (ceil, floored at one row).
        assert stats.estimate_rows_raw(conjuncts) == pytest.approx(4 * 0.5 * (1 / 3))
        assert stats.estimate_rows(conjuncts) == 1.0

    def test_stats_guide_join_order(self, company):
        # Smoke: planner still produces correct results with stats loaded.
        company.execute("ANALYZE")
        rows = company.query(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id "
            "WHERE d.name = 'eng' ORDER BY e.name"
        )
        assert rows == [("ada",), ("cyd",)]
