"""Unit tests for TableSchema: construction, constraints, row handling."""

import pytest

from repro.errors import ConstraintError, SchemaError
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import ColumnType


def make_schema(**kwargs):
    return TableSchema(
        "people",
        [
            Column("id", ColumnType.INT),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("age", ColumnType.INT, default=0),
        ],
        **kwargs,
    )


class TestConstruction:
    def test_basic_properties(self):
        schema = make_schema()
        assert schema.name == "people"
        assert schema.arity == 3
        assert schema.column_names == ("id", "name", "age")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INT), Column("A", ColumnType.INT)])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_bad_identifier_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("1t", [Column("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            Column("bad name", ColumnType.INT)

    def test_names_normalised_to_lowercase(self):
        schema = TableSchema("T1", [Column("Col", ColumnType.INT)])
        assert schema.name == "t1"
        assert schema.columns[0].name == "col"

    def test_pk_columns_become_not_null(self):
        schema = make_schema(primary_key=["id"])
        assert not schema.column("id").nullable

    def test_pk_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(primary_key=["missing"])

    def test_duplicate_pk_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(primary_key=["id", "id"])

    def test_unique_groups_validated(self):
        schema = make_schema(unique=[["name", "age"]])
        assert schema.unique == (("name", "age"),)
        with pytest.raises(SchemaError):
            make_schema(unique=[["name", "name"]])

    def test_fk_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a",), "p", ("x", "y"))

    def test_default_is_coerced(self):
        column = Column("d", ColumnType.DATE, default="2020-01-01")
        import datetime

        assert column.default == datetime.date(2020, 1, 1)


class TestRowHandling:
    def test_row_from_mapping_applies_defaults(self):
        schema = make_schema()
        row = schema.row_from_mapping({"id": 1, "name": "ann"})
        assert row == (1, "ann", 0)

    def test_row_from_mapping_unknown_key_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.row_from_mapping({"id": 1, "name": "x", "oops": 2})

    def test_row_from_mapping_case_insensitive(self):
        schema = make_schema()
        assert schema.row_from_mapping({"ID": 5, "NAME": "z"})[0] == 5

    def test_validate_row_not_null(self):
        schema = make_schema()
        with pytest.raises(ConstraintError):
            schema.validate_row((1, None, 3))

    def test_validate_row_wrong_arity(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.validate_row((1, "x"))

    def test_validate_row_coerces(self):
        schema = make_schema()
        row = schema.validate_row((2.0, "y", None))
        assert row == (2, "y", None)
        assert isinstance(row[0], int)

    def test_key_of(self):
        schema = make_schema(primary_key=["id"])
        assert schema.key_of((7, "n", 1)) == (7,)

    def test_key_of_keyless_is_empty(self):
        schema = make_schema()
        assert schema.key_of((7, "n", 1)) == ()

    def test_round_trip_mapping(self):
        schema = make_schema()
        row = (1, "ann", 30)
        assert schema.row_from_mapping(schema.row_to_mapping(row)) == row

    def test_project(self):
        schema = make_schema()
        projected = schema.project(["name", "id"])
        assert projected.column_names == ("name", "id")
        assert projected.column("name").ctype is ColumnType.TEXT

    def test_column_index_unknown_raises(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.column_index("ghost")

    def test_equality(self):
        assert make_schema() == make_schema()
        assert make_schema() != make_schema(primary_key=["id"])
