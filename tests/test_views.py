"""Tests for view definition, expansion, and updates through views."""

import pytest

from repro.errors import (
    BindError,
    CatalogError,
    CheckOptionError,
    ConstraintError,
    PlanError,
    ViewNotUpdatable,
)
from repro.relational.database import Database
from repro.views.update import analyze_updatability


class TestViewQueries:
    def test_select_through_view(self, company):
        rows = company.query("SELECT * FROM eng_emps ORDER BY id")
        assert rows == [(10, "ada", 100.0), (12, "cyd", 120.0)]

    def test_view_with_renamed_columns(self, company):
        company.execute(
            "CREATE VIEW payroll (who, pay) AS SELECT name, salary FROM emp"
        )
        result = company.execute("SELECT who, pay FROM payroll ORDER BY pay LIMIT 1")
        assert result.columns == ["who", "pay"]
        assert result.rows == [("dan", 75.0)]

    def test_view_over_join(self, company):
        company.execute(
            "CREATE VIEW staffing AS SELECT e.name AS emp_name, d.name AS dept_name "
            "FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        rows = company.query("SELECT * FROM staffing ORDER BY emp_name")
        assert rows[0] == ("ada", "eng")

    def test_view_over_aggregate(self, company):
        company.execute(
            "CREATE VIEW dept_stats AS SELECT dept_id, COUNT(*) AS n, AVG(salary) AS pay "
            "FROM emp WHERE dept_id IS NOT NULL GROUP BY dept_id"
        )
        rows = company.query("SELECT dept_id, n FROM dept_stats ORDER BY dept_id")
        assert rows == [(1, 2), (2, 1)]

    def test_view_on_view(self, company):
        company.execute(
            "CREATE VIEW rich_eng AS SELECT id, name FROM eng_emps WHERE salary > 110"
        )
        assert company.query("SELECT * FROM rich_eng") == [(12, "cyd")]

    def test_view_joined_to_table(self, company):
        rows = company.query(
            "SELECT v.name, d.name FROM eng_emps v, dept d WHERE d.id = 1 ORDER BY v.id"
        )
        assert rows == [("ada", "eng"), ("cyd", "eng")]

    def test_filter_above_view(self, company):
        rows = company.query("SELECT name FROM eng_emps WHERE salary > 110")
        assert rows == [("cyd",)]

    def test_duplicate_output_column_rejected_in_view(self, company):
        with pytest.raises(PlanError):
            company.execute("CREATE VIEW bad AS SELECT id, id FROM emp")

    def test_view_name_collision_rejected(self, company):
        with pytest.raises(CatalogError):
            company.execute("CREATE VIEW emp AS SELECT id FROM dept")

    def test_drop_view(self, company):
        company.execute("DROP VIEW eng_emps")
        with pytest.raises(CatalogError):
            company.query("SELECT * FROM eng_emps")

    def test_drop_table_with_dependent_view_rejected(self, company):
        with pytest.raises(CatalogError):
            company.execute("DROP TABLE emp")

    def test_drop_view_with_dependent_view_rejected(self, company):
        company.execute("CREATE VIEW v2 AS SELECT id FROM eng_emps")
        with pytest.raises(CatalogError):
            company.execute("DROP VIEW eng_emps")


class TestUpdatabilityAnalysis:
    def test_simple_view_is_updatable(self, company):
        info = analyze_updatability(
            company.catalog.view("eng_emps"), company.catalog
        )
        assert info.base.name == "emp"
        assert info.column_map == {"id": "id", "name": "name", "salary": "salary"}
        assert info.predicate is not None
        assert info.check_option

    def test_join_view_not_updatable(self, company):
        company.execute(
            "CREATE VIEW j AS SELECT e.id AS eid FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        with pytest.raises(ViewNotUpdatable):
            analyze_updatability(company.catalog.view("j"), company.catalog)

    def test_aggregate_view_not_updatable(self, company):
        company.execute(
            "CREATE VIEW g AS SELECT dept_id, COUNT(*) AS n FROM emp GROUP BY dept_id"
        )
        with pytest.raises(ViewNotUpdatable):
            analyze_updatability(company.catalog.view("g"), company.catalog)

    def test_computed_column_view_not_updatable(self, company):
        company.execute("CREATE VIEW c AS SELECT id, salary * 2 AS pay2 FROM emp")
        with pytest.raises(ViewNotUpdatable):
            analyze_updatability(company.catalog.view("c"), company.catalog)

    def test_distinct_view_not_updatable(self, company):
        company.execute("CREATE VIEW dd AS SELECT DISTINCT dept_id FROM emp")
        with pytest.raises(ViewNotUpdatable):
            analyze_updatability(company.catalog.view("dd"), company.catalog)

    def test_limit_view_not_updatable(self, company):
        company.execute("CREATE VIEW lim AS SELECT id FROM emp LIMIT 2")
        with pytest.raises(ViewNotUpdatable):
            analyze_updatability(company.catalog.view("lim"), company.catalog)

    def test_check_option_requires_updatable(self, company):
        with pytest.raises(ViewNotUpdatable):
            company.execute(
                "CREATE VIEW x AS SELECT dept_id, COUNT(*) AS n FROM emp "
                "GROUP BY dept_id WITH CHECK OPTION"
            )

    def test_view_on_view_composition(self, company):
        company.execute(
            "CREATE VIEW cheap_eng AS SELECT id, name FROM eng_emps WHERE salary < 110"
        )
        info = analyze_updatability(
            company.catalog.view("cheap_eng"), company.catalog
        )
        assert info.base.name == "emp"
        # Both predicates flattened: dept_id = 1 AND salary < 110.
        from repro.relational.expr import split_conjuncts

        assert len(split_conjuncts(info.predicate)) == 2
        assert info.check_option  # inherited from eng_emps (cascaded)


class TestDmlThroughViews:
    def test_update_through_view(self, company):
        count = company.update("eng_emps", {"salary": 111.0}, "name = 'ada'")
        assert count == 1
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 111.0

    def test_update_does_not_touch_invisible_rows(self, company):
        # bob is in sales; the view must not see him.
        count = company.update("eng_emps", {"salary": 1.0}, "salary > 0")
        assert count == 2
        assert company.execute("SELECT salary FROM emp WHERE id = 11").scalar() == 90.0

    def test_delete_through_view(self, company):
        assert company.delete("eng_emps", "name = 'cyd'") == 1
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_delete_all_view_rows_leaves_rest(self, company):
        assert company.delete("eng_emps") == 2
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 2

    def test_insert_through_view_autofills_predicate(self, company):
        company.insert("eng_emps", {"id": 50, "name": "eve", "salary": 95.0})
        assert company.query("SELECT dept_id FROM emp WHERE id = 50") == [(1,)]

    def test_check_option_blocks_escaping_update(self, company):
        # eng_emps cannot set dept_id (not a view column), but updating
        # a visible row's salary is fine; moving it out is impossible via
        # this view.  Build a view exposing dept_id to test escape.
        company.execute(
            "CREATE VIEW eng2 AS SELECT id, dept_id FROM emp WHERE dept_id = 1 "
            "WITH CHECK OPTION"
        )
        with pytest.raises(CheckOptionError):
            company.update("eng2", {"dept_id": 2}, "id = 10")

    def test_no_check_option_allows_escape(self, company):
        company.execute(
            "CREATE VIEW eng3 AS SELECT id, dept_id FROM emp WHERE dept_id = 1"
        )
        company.update("eng3", {"dept_id": 2}, "id = 10")
        assert company.query("SELECT dept_id FROM emp WHERE id = 10") == [(2,)]
        # The row has now left the view.
        assert company.query("SELECT id FROM eng3 ORDER BY id") == [(12,)]

    def test_insert_through_view_sql(self, company):
        company.execute("INSERT INTO eng_emps (id, name, salary) VALUES (60, 'fay', 85.0)")
        assert company.query("SELECT dept_id FROM emp WHERE id = 60") == [(1,)]

    def test_update_through_view_sql(self, company):
        company.execute("UPDATE eng_emps SET salary = 101.0 WHERE id = 10")
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 101.0

    def test_delete_through_view_sql(self, company):
        company.execute("DELETE FROM eng_emps WHERE id = 12")
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_dml_through_join_view_rejected(self, company):
        company.execute(
            "CREATE VIEW j AS SELECT e.id AS eid, d.name AS dname "
            "FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        with pytest.raises(ViewNotUpdatable):
            company.delete("j")
        with pytest.raises(ViewNotUpdatable):
            company.update("j", {"dname": "x"})
        with pytest.raises(ViewNotUpdatable):
            company.insert("j", {"eid": 1, "dname": "x"})

    def test_update_unknown_view_column_rejected(self, company):
        with pytest.raises(ViewNotUpdatable):
            company.update("eng_emps", {"dept_id": 2})

    def test_where_on_unknown_view_column_rejected(self, company):
        with pytest.raises(BindError):
            company.update("eng_emps", {"salary": 1.0}, "dept_id = 1")

    def test_view_on_view_update_hits_base(self, company):
        company.execute(
            "CREATE VIEW cheap_eng AS SELECT id, name, salary FROM eng_emps "
            "WHERE salary < 110"
        )
        count = company.update("cheap_eng", {"salary": 105.0})
        assert count == 1  # only ada (100.0) is under 110 within eng
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 105.0

    def test_constraints_still_enforced_through_view(self, company):
        with pytest.raises(ConstraintError):
            company.insert("eng_emps", {"id": 10, "name": "dup", "salary": 1.0})


class TestUpdatabilityMemoization:
    def test_analysis_memoized_until_ddl(self, company):
        view = company.catalog.view("eng_emps")
        first = analyze_updatability(view, company.catalog)
        assert analyze_updatability(view, company.catalog) is first
        company.execute("CREATE TABLE unrelated (a INT)")  # any DDL clears
        assert analyze_updatability(view, company.catalog) is not first

    def test_row_visible_binds_predicate_once(self, company, monkeypatch):
        import repro.relational.expr as E

        view = company.catalog.view("eng_emps")
        info = analyze_updatability(view, company.catalog)
        calls = []
        real_bind = E.bind
        monkeypatch.setattr(
            E, "bind", lambda e, layout: calls.append(1) or real_bind(e, layout)
        )
        base = company.catalog.table("emp")
        for row in list(base.rows()):
            info.row_visible(row)
        assert len(calls) == 1  # one bind for the whole scan, not per row

    def test_view_row_positions_precomputed(self, company, monkeypatch):
        view = company.catalog.view("eng_emps")
        info = analyze_updatability(view, company.catalog)
        base = company.catalog.table("emp")
        rows = list(base.rows())
        assert info.view_row(rows[0]) == (10, "ada", 100.0)
        # Schema lookups happen on the first projection only.
        calls = []
        schema = base.schema
        real_index = schema.column_index
        monkeypatch.setattr(
            type(schema),
            "column_index",
            lambda self, name: calls.append(name) or real_index(name),
        )
        for row in rows:
            info.view_row(row)
        assert not calls  # positions were cached by the first call

    def test_memoized_dml_still_correct_after_ddl(self, company):
        company.update("eng_emps", {"salary": 111.0}, "id = 10")
        company.execute("DROP VIEW eng_emps")
        company.execute(
            "CREATE VIEW eng_emps AS "
            "SELECT id, name FROM emp WHERE dept_id = 1 WITH CHECK OPTION"
        )
        company.update("eng_emps", {"name": "ada2"}, "id = 10")
        assert company.query("SELECT name FROM emp WHERE id = 10") == [("ada2",)]
