"""Tests for engine extensions: UNION, subqueries, savepoints, ALTER TABLE,
extra scalar functions, constant SELECT, and CSV import/export."""

import pytest

from repro.errors import (
    BindError,
    CatalogError,
    ParseError,
    PlanError,
    SchemaError,
    TransactionError,
    TypeMismatchError,
)
from repro.relational.csvio import (
    export_csv,
    export_csv_text,
    import_csv,
    import_csv_text,
)
from repro.relational.database import Database


@pytest.fixture
def two_tables(db):
    db.execute("CREATE TABLE a (x INT PRIMARY KEY, y TEXT)")
    db.execute("CREATE TABLE b (x INT PRIMARY KEY)")
    db.execute("INSERT INTO a VALUES (1, 'p'), (2, 'q'), (3, 'p')")
    db.execute("INSERT INTO b VALUES (1), (3), (9)")
    return db


class TestUnion:
    def test_union_distinct(self, two_tables):
        rows = two_tables.query("SELECT y FROM a UNION SELECT y FROM a ORDER BY y")
        assert rows == [("p",), ("q",)]

    def test_union_all(self, two_tables):
        rows = two_tables.query("SELECT y FROM a UNION ALL SELECT y FROM a")
        assert len(rows) == 6

    def test_union_across_tables(self, two_tables):
        rows = two_tables.query(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x"
        )
        assert rows == [(1,), (2,), (3,), (9,)]

    def test_union_with_limit(self, two_tables):
        rows = two_tables.query(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x LIMIT 2"
        )
        assert rows == [(1,), (2,)]

    def test_union_arity_mismatch(self, two_tables):
        with pytest.raises(PlanError):
            two_tables.query("SELECT x, y FROM a UNION SELECT x FROM b")

    def test_order_by_on_early_arm_rejected(self, two_tables):
        with pytest.raises(ParseError):
            two_tables.query("SELECT x FROM a ORDER BY x UNION SELECT x FROM b")

    def test_mixed_chain_left_associative(self, two_tables):
        # (a UNION a) keeps one copy; UNION ALL b then appends b verbatim.
        rows = two_tables.query(
            "SELECT x FROM a UNION SELECT x FROM a UNION ALL SELECT x FROM b"
        )
        assert len(rows) == 3 + 3


class TestSubqueries:
    def test_in_subquery(self, two_tables):
        rows = two_tables.query(
            "SELECT x FROM a WHERE x IN (SELECT x FROM b) ORDER BY x"
        )
        assert rows == [(1,), (3,)]

    def test_not_in_subquery(self, two_tables):
        rows = two_tables.query("SELECT x FROM a WHERE x NOT IN (SELECT x FROM b)")
        assert rows == [(2,)]

    def test_exists(self, two_tables):
        rows = two_tables.query(
            "SELECT x FROM a WHERE EXISTS (SELECT x FROM b WHERE x = 9)"
        )
        assert len(rows) == 3
        rows = two_tables.query(
            "SELECT x FROM a WHERE EXISTS (SELECT x FROM b WHERE x = 42)"
        )
        assert rows == []

    def test_not_exists(self, two_tables):
        rows = two_tables.query(
            "SELECT x FROM a WHERE NOT EXISTS (SELECT x FROM b WHERE x = 42)"
        )
        assert len(rows) == 3

    def test_scalar_subquery(self, two_tables):
        rows = two_tables.query("SELECT x FROM a WHERE x = (SELECT MIN(x) FROM b)")
        assert rows == [(1,)]

    def test_scalar_subquery_empty_is_null(self, two_tables):
        rows = two_tables.query(
            "SELECT x FROM a WHERE x = (SELECT x FROM b WHERE x = 42)"
        )
        assert rows == []  # comparison with NULL is unknown

    def test_scalar_subquery_multirow_rejected(self, two_tables):
        with pytest.raises(PlanError):
            two_tables.query("SELECT x FROM a WHERE x = (SELECT x FROM b)")

    def test_in_subquery_multicolumn_rejected(self, two_tables):
        two_tables.execute("CREATE TABLE c (p INT, q INT)")
        with pytest.raises(PlanError):
            two_tables.query("SELECT x FROM a WHERE x IN (SELECT p, q FROM c)")

    def test_correlated_subquery_rejected(self, two_tables):
        with pytest.raises(BindError):
            two_tables.query(
                "SELECT x FROM a WHERE x IN (SELECT x FROM b WHERE b.x = a.x)"
            )

    def test_nested_subqueries(self, two_tables):
        rows = two_tables.query(
            "SELECT x FROM a WHERE x IN "
            "(SELECT x FROM b WHERE x IN (SELECT x FROM a))"
        )
        assert rows == [(1,), (3,)]


class TestSavepoints:
    def test_basic_savepoint_rollback(self, two_tables):
        db = two_tables
        db.execute("BEGIN")
        db.execute("INSERT INTO b VALUES (100)")
        db.execute("SAVEPOINT sp")
        db.execute("INSERT INTO b VALUES (101)")
        db.execute("ROLLBACK TO sp")
        db.execute("COMMIT")
        xs = [x for (x,) in db.query("SELECT x FROM b ORDER BY x")]
        assert 100 in xs and 101 not in xs

    def test_savepoint_outside_txn_rejected(self, two_tables):
        with pytest.raises(TransactionError):
            two_tables.execute("SAVEPOINT sp")

    def test_rollback_to_unknown_rejected(self, two_tables):
        two_tables.execute("BEGIN")
        with pytest.raises(TransactionError):
            two_tables.execute("ROLLBACK TO ghost")

    def test_release_savepoint(self, two_tables):
        db = two_tables
        db.execute("BEGIN")
        db.execute("SAVEPOINT sp")
        db.execute("RELEASE SAVEPOINT sp")
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK TO sp")

    def test_nested_savepoints(self, two_tables):
        db = two_tables
        db.execute("BEGIN")
        db.execute("SAVEPOINT s1")
        db.execute("INSERT INTO b VALUES (200)")
        db.execute("SAVEPOINT s2")
        db.execute("INSERT INTO b VALUES (201)")
        db.execute("ROLLBACK TO s1")
        # s2 died with the rollback.
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK TO s2")
        db.execute("COMMIT")
        xs = [x for (x,) in db.query("SELECT x FROM b")]
        assert 200 not in xs and 201 not in xs

    def test_savepoints_cleared_on_commit(self, two_tables):
        db = two_tables
        db.execute("BEGIN")
        db.execute("SAVEPOINT sp")
        db.execute("COMMIT")
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK TO sp")


class TestAlterTable:
    def test_add_column_with_default(self, two_tables):
        db = two_tables
        db.execute("ALTER TABLE a ADD COLUMN z FLOAT DEFAULT 1.5")
        assert db.query("SELECT z FROM a WHERE x = 1") == [(1.5,)]
        db.execute("INSERT INTO a VALUES (4, 'r', 2.0)")
        assert db.query("SELECT z FROM a WHERE x = 4") == [(2.0,)]

    def test_add_column_nullable(self, two_tables):
        two_tables.execute("ALTER TABLE a ADD COLUMN note TEXT")
        assert two_tables.query("SELECT note FROM a WHERE x = 1") == [(None,)]

    def test_add_not_null_without_default_rejected(self, two_tables):
        with pytest.raises(CatalogError):
            two_tables.execute("ALTER TABLE a ADD COLUMN z INT NOT NULL")

    def test_add_duplicate_rejected(self, two_tables):
        with pytest.raises(CatalogError):
            two_tables.execute("ALTER TABLE a ADD COLUMN y TEXT")

    def test_drop_column(self, two_tables):
        two_tables.execute("ALTER TABLE a DROP COLUMN y")
        assert two_tables.catalog.schema_of("a").column_names == ("x",)
        assert two_tables.query("SELECT * FROM a WHERE x = 1") == [(1,)]

    def test_drop_pk_column_rejected(self, two_tables):
        with pytest.raises(CatalogError):
            two_tables.execute("ALTER TABLE a DROP COLUMN x")

    def test_drop_column_with_dependent_view_rejected(self, two_tables):
        two_tables.execute("CREATE VIEW va AS SELECT y FROM a")
        with pytest.raises(CatalogError):
            two_tables.execute("ALTER TABLE a DROP COLUMN y")

    def test_rename_table(self, two_tables):
        two_tables.execute("ALTER TABLE b RENAME TO bee")
        assert two_tables.query("SELECT COUNT(*) FROM bee") == [(3,)]
        with pytest.raises(CatalogError):
            two_tables.query("SELECT * FROM b")

    def test_rename_referenced_parent_rejected(self, db):
        db.execute("CREATE TABLE p (id INT PRIMARY KEY)")
        db.execute("CREATE TABLE c (pid INT, FOREIGN KEY (pid) REFERENCES p (id))")
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE p RENAME TO pp")

    def test_alter_preserves_pk_and_indexes(self, two_tables):
        db = two_tables
        db.execute("CREATE INDEX iy ON a (y)")
        db.execute("ALTER TABLE a ADD COLUMN z INT")
        table = db.catalog.table("a")
        assert "iy" in table.indexes
        from repro.errors import ConstraintError

        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO a VALUES (1, 'dup', NULL)")

    def test_alter_inside_txn_rejected(self, two_tables):
        two_tables.execute("BEGIN")
        with pytest.raises(TransactionError):
            two_tables.execute("ALTER TABLE a ADD COLUMN z INT")

    def test_alter_persists(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("ALTER TABLE t ADD COLUMN b TEXT DEFAULT 'x'")
        db.close()
        db2 = Database(path=path, fsync=False)
        assert db2.query("SELECT * FROM t") == [(1, "x")]
        db2.close()


class TestScalarFunctions:
    def test_round(self, db):
        assert db.query("SELECT ROUND(2.567, 2)") == [(2.57,)]
        assert db.query("SELECT ROUND(2.4)") == [(2.0,)]

    def test_trim_family(self, db):
        assert db.query("SELECT TRIM('  x  '), LTRIM('  x'), RTRIM('x  ')") == [
            ("x", "x", "x")
        ]

    def test_replace(self, db):
        assert db.query("SELECT REPLACE('banana', 'na', '-')") == [("ba--",)]

    def test_nullif(self, db):
        assert db.query("SELECT NULLIF(1, 1), NULLIF(1, 2)") == [(None, 1)]

    def test_null_propagation(self, db):
        assert db.query("SELECT TRIM(NULL), ROUND(NULL)") == [(None, None)]

    def test_constant_select_arithmetic(self, db):
        assert db.query("SELECT 2 + 3 * 4 AS v") == [(14,)]


class TestInsertSelect:
    @pytest.fixture
    def pair(self, db):
        db.execute("CREATE TABLE src (a INT PRIMARY KEY, b TEXT)")
        db.execute("CREATE TABLE dst (a INT PRIMARY KEY, b TEXT)")
        db.execute("INSERT INTO src VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        return db

    def test_basic_copy(self, pair):
        result = pair.execute("INSERT INTO dst SELECT a, b FROM src WHERE a > 1")
        assert result.rowcount == 2
        assert pair.query("SELECT * FROM dst ORDER BY a") == [(2, "y"), (3, "z")]

    def test_column_list_reorders(self, pair):
        pair.execute("INSERT INTO dst (b, a) SELECT b, a + 100 FROM src")
        assert pair.query("SELECT a, b FROM dst ORDER BY a") == [
            (101, "x"),
            (102, "y"),
            (103, "z"),
        ]

    def test_self_insert_materialises_first(self, pair):
        pair.execute("INSERT INTO src SELECT a + 10, b FROM src")
        assert pair.execute("SELECT COUNT(*) FROM src").scalar() == 6

    def test_arity_mismatch_rejected(self, pair):
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            pair.execute("INSERT INTO dst SELECT a FROM src")

    def test_atomic_on_constraint_error(self, pair):
        from repro.errors import ConstraintError

        pair.execute("INSERT INTO dst VALUES (3, 'pre')")
        with pytest.raises(ConstraintError):
            pair.execute("INSERT INTO dst SELECT a, b FROM src")  # 3 collides
        assert pair.execute("SELECT COUNT(*) FROM dst").scalar() == 1

    def test_into_view(self, pair):
        pair.execute("CREATE VIEW dv AS SELECT a, b FROM dst")
        pair.execute("INSERT INTO dv SELECT a, b FROM src WHERE a = 1")
        assert pair.query("SELECT * FROM dst") == [(1, "x")]

    def test_scalar_subquery_in_set(self, pair):
        pair.execute("UPDATE src SET a = (SELECT MAX(a) FROM src) + a WHERE a = 1")
        assert pair.query("SELECT a FROM src ORDER BY a") == [(2,), (3,), (4,)]


class TestCheckConstraints:
    @pytest.fixture
    def acct(self, db):
        db.execute(
            "CREATE TABLE acct (id INT PRIMARY KEY, balance FLOAT, "
            "kind TEXT, CHECK (balance >= 0), "
            "CHECK (kind IN ('savings', 'checking')))"
        )
        db.execute("INSERT INTO acct VALUES (1, 10.0, 'savings')")
        return db

    def test_insert_violation(self, acct):
        from repro.errors import CheckConstraintError

        with pytest.raises(CheckConstraintError):
            acct.execute("INSERT INTO acct VALUES (2, -5.0, 'savings')")
        with pytest.raises(CheckConstraintError):
            acct.execute("INSERT INTO acct VALUES (2, 5.0, 'slush-fund')")

    def test_update_violation(self, acct):
        from repro.errors import CheckConstraintError

        with pytest.raises(CheckConstraintError):
            acct.execute("UPDATE acct SET balance = -1 WHERE id = 1")

    def test_null_passes(self, acct):
        acct.execute("INSERT INTO acct VALUES (3, NULL, 'checking')")

    def test_violation_is_atomic(self, acct):
        from repro.errors import CheckConstraintError

        with pytest.raises(CheckConstraintError):
            acct.execute(
                "INSERT INTO acct VALUES (4, 1.0, 'savings'), (5, -1.0, 'savings')"
            )
        assert acct.execute("SELECT COUNT(*) FROM acct").scalar() == 1

    def test_check_enforced_through_view(self, acct):
        from repro.errors import CheckConstraintError

        acct.execute("CREATE VIEW v AS SELECT id, balance FROM acct")
        with pytest.raises(CheckConstraintError):
            acct.update("v", {"balance": -9.0}, "id = 1")

    def test_bad_check_column_rejected_at_ddl(self, db):
        from repro.errors import BindError

        with pytest.raises(BindError):
            db.execute("CREATE TABLE t (a INT, CHECK (ghost > 0))")

    def test_check_survives_reopen(self, tmp_path):
        from repro.errors import CheckConstraintError

        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        db.execute("CREATE TABLE t (a INT, CHECK (a < 100))")
        db.close()
        db2 = Database(path=path, fsync=False)
        with pytest.raises(CheckConstraintError):
            db2.execute("INSERT INTO t VALUES (200)")
        db2.close()

    def test_check_survives_alter(self, acct):
        from repro.errors import CheckConstraintError

        acct.execute("ALTER TABLE acct ADD COLUMN note TEXT")
        with pytest.raises(CheckConstraintError):
            acct.execute("INSERT INTO acct VALUES (9, -2.0, 'savings', 'x')")


@pytest.fixture
def people(db):
    db.execute(
        "CREATE TABLE people (id INT PRIMARY KEY, name TEXT NOT NULL, "
        "born DATE, score FLOAT)"
    )
    db.execute(
        "INSERT INTO people VALUES "
        "(1, 'ann', '1960-05-04', 9.5), (2, 'bob', NULL, NULL)"
    )
    return db


class TestCsv:
    def test_export_text(self, people):
        text = export_csv_text(people, "people")
        lines = text.strip().splitlines()
        assert lines[0] == "id,name,born,score"
        assert lines[1] == "1,ann,1960-05-04,9.5"
        assert lines[2] == "2,bob,,"

    def test_roundtrip(self, people):
        text = export_csv_text(people, "people")
        people.execute("DELETE FROM people")
        count = import_csv_text(people, "people", text)
        assert count == 2
        assert people.query("SELECT name FROM people ORDER BY id") == [
            ("ann",),
            ("bob",),
        ]
        assert people.query("SELECT born FROM people WHERE id = 2") == [(None,)]

    def test_file_roundtrip(self, people, tmp_path):
        path = str(tmp_path / "people.csv")
        assert export_csv(people, "people", path) == 2
        people.execute("DELETE FROM people")
        assert import_csv(people, "people", path) == 2

    def test_import_partial_columns(self, people):
        count = import_csv_text(people, "people", "id,name\n7,zoe\n")
        assert count == 1
        assert people.query("SELECT score FROM people WHERE id = 7") == [(None,)]

    def test_import_unknown_column_rejected(self, people):
        with pytest.raises(SchemaError):
            import_csv_text(people, "people", "id,ghost\n7,1\n")

    def test_import_is_atomic(self, people):
        bad = "id,name\n7,zoe\n1,dup\n"  # second row violates PK
        with pytest.raises(Exception):
            import_csv_text(people, "people", bad)
        assert people.execute("SELECT COUNT(*) FROM people").scalar() == 2

    def test_import_bad_type_reports_line(self, people):
        with pytest.raises(TypeMismatchError):
            import_csv_text(people, "people", "id,name\nnot-a-number,zoe\n")

    def test_import_arity_mismatch(self, people):
        with pytest.raises(SchemaError):
            import_csv_text(people, "people", "id,name\n7\n")

    def test_export_where(self, people):
        text = export_csv_text(people, "people", where="id = 1")
        assert "bob" not in text

    def test_export_view(self, people):
        people.execute("CREATE VIEW scored AS SELECT id, score FROM people")
        text = export_csv_text(people, "scored")
        assert text.splitlines()[0] == "id,score"

    def test_import_through_view(self, people):
        people.execute(
            "CREATE VIEW named AS SELECT id, name FROM people WHERE score IS NULL"
        )
        import_csv_text(people, "named", "id,name\n9,view-born\n")
        assert people.query("SELECT name FROM people WHERE id = 9") == [
            ("view-born",)
        ]
