"""Tests for authorization: users, ownership, GRANT/REVOKE, views as
protection domains."""

import pytest

from repro.relational.auth import ALL_PRIVILEGES, AuthError, AuthManager, Privilege
from repro.relational.database import Database


@pytest.fixture
def secured(db):
    db.execute("CREATE TABLE payroll (id INT PRIMARY KEY, name TEXT, salary FLOAT)")
    db.execute("INSERT INTO payroll VALUES (1, 'ada', 100.0), (2, 'boss', 999.0)")
    db.execute(
        "CREATE VIEW staff AS SELECT id, name FROM payroll WHERE salary < 500"
    )
    return db


class TestAuthManager:
    def test_owner_holds_everything(self):
        auth = AuthManager()
        auth.record_owner("t", "alice")
        for privilege in Privilege:
            auth.check("alice", privilege, "t")  # no raise

    def test_superuser_bypasses(self):
        auth = AuthManager()
        auth.record_owner("t", "alice")
        auth.check("dba", Privilege.DELETE, "t")

    def test_grant_and_check(self):
        auth = AuthManager()
        auth.record_owner("t", "alice")
        auth.grant("alice", {Privilege.SELECT}, "t", "bob")
        auth.check("bob", Privilege.SELECT, "t")
        with pytest.raises(AuthError):
            auth.check("bob", Privilege.UPDATE, "t")

    def test_non_owner_cannot_grant(self):
        auth = AuthManager()
        auth.record_owner("t", "alice")
        with pytest.raises(AuthError):
            auth.grant("bob", {Privilege.SELECT}, "t", "carol")

    def test_revoke(self):
        auth = AuthManager()
        auth.record_owner("t", "alice")
        auth.grant("alice", set(ALL_PRIVILEGES), "t", "bob")
        auth.revoke("alice", {Privilege.DELETE}, "t", "bob")
        auth.check("bob", Privilege.SELECT, "t")
        with pytest.raises(AuthError):
            auth.check("bob", Privilege.DELETE, "t")

    def test_forget_object_drops_grants(self):
        auth = AuthManager()
        auth.record_owner("t", "alice")
        auth.grant("alice", {Privilege.SELECT}, "t", "bob")
        auth.forget_object("t")
        assert auth.owner_of("t") is None
        assert auth.privileges_of("bob", "t") == set()

    def test_doc_roundtrip(self):
        auth = AuthManager()
        auth.record_owner("t", "alice")
        auth.grant("alice", {Privilege.SELECT, Privilege.INSERT}, "t", "bob")
        restored = AuthManager.from_doc(auth.to_doc())
        restored.check("bob", Privilege.INSERT, "t")
        assert restored.owner_of("t") == "alice"

    def test_unknown_privilege_name(self):
        with pytest.raises(AuthError):
            Privilege.from_name("FROB")


class TestSqlLevelAuth:
    def test_view_as_protection_domain(self, secured):
        secured.execute("GRANT SELECT ON staff TO clerk")
        secured.set_user("clerk")
        assert secured.query("SELECT * FROM staff") == [(1, "ada")]
        with pytest.raises(AuthError):
            secured.query("SELECT * FROM payroll")

    def test_join_requires_both_sides(self, secured):
        secured.execute("CREATE TABLE extra (id INT PRIMARY KEY)")
        secured.execute("GRANT SELECT ON staff TO clerk")
        secured.set_user("clerk")
        with pytest.raises(AuthError):
            secured.query(
                "SELECT * FROM staff s JOIN extra e ON s.id = e.id"
            )

    def test_subquery_sources_checked(self, secured):
        secured.execute("GRANT SELECT ON staff TO clerk")
        secured.set_user("clerk")
        with pytest.raises(AuthError):
            secured.query(
                "SELECT id FROM staff WHERE id IN (SELECT id FROM payroll)"
            )

    def test_dml_privileges_separate(self, secured):
        secured.execute("GRANT SELECT, UPDATE ON staff TO clerk")
        secured.set_user("clerk")
        secured.execute("UPDATE staff SET name = 'eve' WHERE id = 1")
        with pytest.raises(AuthError):
            secured.execute("DELETE FROM staff WHERE id = 1")
        with pytest.raises(AuthError):
            secured.execute("INSERT INTO staff (id, name) VALUES (9, 'x')")

    def test_grant_all(self, secured):
        secured.execute("GRANT ALL ON staff TO clerk")
        secured.set_user("clerk")
        secured.execute("DELETE FROM staff WHERE id = 1")

    def test_revoke_sql(self, secured):
        secured.execute("GRANT SELECT ON staff TO clerk")
        secured.execute("REVOKE SELECT ON staff FROM clerk")
        secured.set_user("clerk")
        with pytest.raises(AuthError):
            secured.query("SELECT * FROM staff")

    def test_only_owner_grants(self, secured):
        secured.set_user("mallory")
        with pytest.raises(AuthError):
            secured.execute("GRANT SELECT ON payroll TO mallory")

    def test_non_owner_cannot_drop_or_alter(self, secured):
        secured.set_user("clerk")
        with pytest.raises(AuthError):
            secured.execute("DROP TABLE payroll")
        with pytest.raises(AuthError):
            secured.execute("ALTER TABLE payroll ADD COLUMN x INT")
        with pytest.raises(AuthError):
            secured.execute("CREATE INDEX ix ON payroll (name)")

    def test_create_view_requires_select_on_sources(self, secured):
        secured.set_user("clerk")
        with pytest.raises(AuthError):
            secured.execute("CREATE VIEW mine AS SELECT id FROM payroll")

    def test_user_owns_own_objects(self, secured):
        secured.set_user("clerk")
        secured.execute("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)")
        secured.execute("INSERT INTO notes VALUES (1, 'hello')")
        assert secured.query("SELECT body FROM notes") == [("hello",)]
        secured.execute("DROP TABLE notes")

    def test_system_tables_always_readable(self, secured):
        secured.set_user("clerk")
        assert secured.query("SELECT COUNT(*) FROM _tables")[0][0] >= 2

    def test_programmatic_dml_checked(self, secured):
        secured.set_user("clerk")
        with pytest.raises(AuthError):
            secured.insert("payroll", {"id": 9, "name": "x", "salary": 1.0})
        with pytest.raises(AuthError):
            secured.update("payroll", {"salary": 0.0})
        with pytest.raises(AuthError):
            secured.delete("payroll")

    def test_grants_survive_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("GRANT SELECT ON t TO clerk")
        db.close()
        db2 = Database(path=path, fsync=False)
        db2.set_user("clerk")
        assert db2.query("SELECT COUNT(*) FROM t") == [(0,)]
        with pytest.raises(AuthError):
            db2.execute("DELETE FROM t")
        db2.close()

    def test_forms_respect_privileges(self, secured):
        from repro.forms import FormController, generate_form

        secured.execute("GRANT SELECT ON staff TO clerk")
        secured.set_user("clerk")
        controller = FormController(secured, generate_form(secured, "staff"))
        assert controller.record_count == 1
        controller.begin_edit()
        controller.set_field("name", "zz")
        assert not controller.save()  # UPDATE not granted
        assert "error" in controller.message
