"""Tests for the catalog layer, system-table protection, and streaming."""

import pytest

from repro.errors import CatalogError, SqlError
from repro.relational.catalog import Catalog, view_dependencies
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import ColumnType


def schema(name="t"):
    return TableSchema(name, [Column("a", ColumnType.INT)])


class TestCatalog:
    def test_create_and_resolve(self):
        catalog = Catalog()
        table = catalog.create_table(schema())
        assert catalog.table("t") is table
        assert catalog.resolve("T") is table
        assert catalog.has_table("t")

    def test_duplicate_name_rejected(self):
        catalog = Catalog()
        catalog.create_table(schema())
        with pytest.raises(CatalogError):
            catalog.create_table(schema())

    def test_system_names_reserved(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.create_table(schema("_tables"))

    def test_unknown_lookups(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.table("ghost")
        with pytest.raises(CatalogError):
            catalog.view("ghost")
        with pytest.raises(CatalogError):
            catalog.resolve("ghost")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table(schema())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_tables_sorted(self):
        catalog = Catalog()
        catalog.create_table(schema("zeta"))
        catalog.create_table(schema("alpha"))
        assert [t.name for t in catalog.tables()] == ["alpha", "zeta"]

    def test_view_dependencies_helper(self, company):
        view = company.catalog.view("eng_emps")
        assert view_dependencies(view) == ["emp"]

    def test_system_tables_are_fresh_copies(self, company):
        first = company.catalog.table("_tables")
        second = company.catalog.table("_tables")
        assert first is not second  # synthesised per access


class TestSystemTableProtection:
    def test_dml_rejected(self, company):
        with pytest.raises(CatalogError):
            company.insert("_tables", {"name": "fake", "kind": "table", "arity": 1})
        with pytest.raises(CatalogError):
            company.delete("_columns")
        with pytest.raises(CatalogError):
            company.execute("UPDATE _views SET name = 'x'")

    def test_select_still_fine(self, company):
        assert company.execute("SELECT COUNT(*) FROM _tables").scalar() >= 2

    def test_browse_form_over_catalog(self, company):
        """The catalog itself is browsable through the UI — a 1983 delight."""
        from repro.core import WowApp
        from repro.windows.geometry import Rect

        app = WowApp(company, width=90, height=20)
        browser = app.open_browser("_columns", Rect(0, 0, 85, 15))
        assert len(browser.rows) > 5
        app.expect_on_screen("table_name")


class TestStreaming:
    def test_stream_lazy_rows(self, company):
        columns, rows = company.stream("SELECT id, name FROM emp ORDER BY id")
        assert columns == ["id", "name"]
        first = next(rows)
        assert first == (10, "ada")
        assert len(list(rows)) == 3

    def test_stream_rejects_non_select(self, company):
        with pytest.raises(SqlError):
            company.stream("DELETE FROM emp")

    def test_stream_respects_privileges(self, company):
        from repro.relational.auth import AuthError

        company.set_user("nobody")
        with pytest.raises(AuthError):
            company.stream("SELECT * FROM emp")
        company.set_user("dba")

    def test_stream_counts_as_select(self, company):
        before = company.stats["selects"]
        company.stream("SELECT id FROM emp")
        assert company.stats["selects"] == before + 1
