"""Tests for expression evaluation, binding, and rewriting utilities."""

import pytest

from repro.errors import BindError, ExecutionError, TypeMismatchError
from repro.relational.expr import (
    BinOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    RowLayout,
    UnaryOp,
    bind,
    column_refs,
    conjoin,
    const_comparison,
    equality_pair,
    references_only,
    split_conjuncts,
)
from repro.relational.types import ColumnType

LAYOUT = RowLayout(
    [
        ("t", "a", ColumnType.INT),
        ("t", "b", ColumnType.TEXT),
        ("u", "a", ColumnType.INT),
        ("u", "c", ColumnType.FLOAT),
    ]
)


def run(expr, row=(1, "x", 2, 3.5)):
    return bind(expr, LAYOUT).eval(row)


class TestRowLayout:
    def test_qualified_resolution(self):
        assert LAYOUT.resolve("t", "a") == 0
        assert LAYOUT.resolve("u", "a") == 2

    def test_bare_unambiguous(self):
        assert LAYOUT.resolve(None, "b") == 1
        assert LAYOUT.resolve(None, "c") == 3

    def test_bare_ambiguous_raises(self):
        with pytest.raises(BindError):
            LAYOUT.resolve(None, "a")

    def test_unknown_raises(self):
        with pytest.raises(BindError):
            LAYOUT.resolve("t", "zzz")
        with pytest.raises(BindError):
            LAYOUT.resolve(None, "zzz")

    def test_concatenation(self):
        left = RowLayout([("x", "p", ColumnType.INT)])
        right = RowLayout([("y", "q", ColumnType.INT)])
        combined = left + right
        assert combined.resolve("y", "q") == 1

    def test_duplicate_qualified_rejected(self):
        with pytest.raises(BindError):
            RowLayout([("t", "a", ColumnType.INT), ("t", "a", ColumnType.INT)])


class TestEvaluation:
    def test_comparison(self):
        assert run(BinOp("<", ColumnRef("a", "t"), ColumnRef("a", "u"))) is True
        assert run(BinOp("=", ColumnRef("a", "t"), Literal(1))) is True
        assert run(BinOp("!=", ColumnRef("a", "t"), Literal(1))) is False

    def test_comparison_with_null_is_unknown(self):
        assert run(BinOp("=", Literal(None), Literal(1))) is None
        assert run(BinOp("<", Literal(None), Literal(None))) is None

    def test_arithmetic(self):
        assert run(BinOp("+", Literal(2), Literal(3))) == 5
        assert run(BinOp("*", ColumnRef("c", "u"), Literal(2))) == 7.0
        assert run(BinOp("-", Literal(2), Literal(5))) == -3
        assert run(BinOp("%", Literal(7), Literal(3))) == 1

    def test_integer_division_exact_stays_int(self):
        assert run(BinOp("/", Literal(6), Literal(3))) == 2
        assert run(BinOp("/", Literal(7), Literal(2))) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            run(BinOp("/", Literal(1), Literal(0)))
        with pytest.raises(ExecutionError):
            run(BinOp("%", Literal(1), Literal(0)))

    def test_arithmetic_null_propagates(self):
        assert run(BinOp("+", Literal(None), Literal(3))) is None

    def test_string_concat(self):
        assert run(BinOp("+", Literal("ab"), Literal("cd"))) == "abcd"

    def test_arithmetic_type_errors(self):
        with pytest.raises(TypeMismatchError):
            run(BinOp("+", Literal(True), Literal(1)))
        with pytest.raises(TypeMismatchError):
            run(BinOp("*", Literal("x"), Literal(2)))

    def test_and_or_3vl(self):
        true, false, null = Literal(True), Literal(False), Literal(None)
        assert run(BinOp("and", false, null)) is False
        assert run(BinOp("and", true, null)) is None
        assert run(BinOp("or", true, null)) is True
        assert run(BinOp("or", false, null)) is None

    def test_not(self):
        assert run(UnaryOp("not", Literal(False))) is True
        assert run(UnaryOp("not", Literal(None))) is None

    def test_negation(self):
        assert run(UnaryOp("-", Literal(4))) == -4
        assert run(UnaryOp("-", Literal(None))) is None
        with pytest.raises(TypeMismatchError):
            run(UnaryOp("-", Literal("x")))

    def test_is_null(self):
        assert run(IsNull(Literal(None))) is True
        assert run(IsNull(Literal(1))) is False
        assert run(IsNull(Literal(None), negated=True)) is False

    def test_like(self):
        assert run(Like(Literal("window"), "win%")) is True
        assert run(Like(Literal("window"), "w_ndow")) is True
        assert run(Like(Literal("window"), "Win%")) is False  # case-sensitive
        assert run(Like(Literal("window"), "win%", negated=True)) is False
        assert run(Like(Literal(None), "%")) is None

    def test_like_escapes_regex_metachars(self):
        assert run(Like(Literal("a.b"), "a.b")) is True
        assert run(Like(Literal("axb"), "a.b")) is False

    def test_like_rejects_non_text(self):
        with pytest.raises(TypeMismatchError):
            run(Like(ColumnRef("a", "t"), "%"))

    def test_in_list(self):
        expr = InList(ColumnRef("a", "t"), [Literal(1), Literal(2)])
        assert run(expr) is True
        expr = InList(ColumnRef("a", "t"), [Literal(5)])
        assert run(expr) is False

    def test_in_list_null_semantics(self):
        # 1 IN (2, NULL) is UNKNOWN, not FALSE.
        expr = InList(Literal(1), [Literal(2), Literal(None)])
        assert run(expr) is None
        # 1 IN (1, NULL) is TRUE.
        expr = InList(Literal(1), [Literal(1), Literal(None)])
        assert run(expr) is True
        # NULL IN (...) is UNKNOWN.
        expr = InList(Literal(None), [Literal(1)])
        assert run(expr) is None

    def test_not_in(self):
        expr = InList(Literal(1), [Literal(2)], negated=True)
        assert run(expr) is True
        expr = InList(Literal(1), [Literal(2), Literal(None)], negated=True)
        assert run(expr) is None

    def test_func_calls(self):
        assert run(FuncCall("lower", [Literal("ABC")])) == "abc"
        assert run(FuncCall("upper", [Literal("abc")])) == "ABC"
        assert run(FuncCall("length", [Literal("abcd")])) == 4
        assert run(FuncCall("abs", [Literal(-3)])) == 3
        assert run(FuncCall("coalesce", [Literal(None), Literal(7)])) == 7
        assert run(FuncCall("substr", [Literal("window"), Literal(2), Literal(3)])) == "ind"

    def test_func_null_propagation(self):
        assert run(FuncCall("lower", [Literal(None)])) is None

    def test_unknown_func_rejected(self):
        with pytest.raises(ValueError):
            FuncCall("md5", [Literal("x")])

    def test_unbound_column_raises(self):
        with pytest.raises(ExecutionError):
            ColumnRef("a", "t").eval((1,))


class TestUtilities:
    def test_split_and_conjoin_roundtrip(self):
        expr = BinOp(
            "and",
            BinOp("and", Literal(True), Literal(False)),
            IsNull(ColumnRef("a", "t")),
        )
        parts = split_conjuncts(expr)
        assert len(parts) == 3
        rebuilt = conjoin(parts)
        assert split_conjuncts(rebuilt) == parts

    def test_split_none(self):
        assert split_conjuncts(None) == []
        assert conjoin([]) is None

    def test_column_refs(self):
        expr = BinOp("=", ColumnRef("a", "t"), BinOp("+", ColumnRef("c", "u"), Literal(1)))
        refs = column_refs(expr)
        assert {(r.qualifier, r.name) for r in refs} == {("t", "a"), ("u", "c")}

    def test_references_only(self):
        expr = BinOp("=", ColumnRef("a", "t"), Literal(1))
        assert references_only(expr, ["t"])
        assert not references_only(expr, ["u"])
        bare = BinOp("=", ColumnRef("a"), Literal(1))
        assert not references_only(bare, ["t"])  # unqualified fails

    def test_equality_pair(self):
        expr = BinOp("=", ColumnRef("a", "t"), ColumnRef("a", "u"))
        pair = equality_pair(expr)
        assert pair is not None and pair[0].qualifier == "t"
        assert equality_pair(BinOp("<", ColumnRef("a", "t"), ColumnRef("a", "u"))) is None

    def test_const_comparison_normalises_direction(self):
        col = ColumnRef("a", "t")
        assert const_comparison(BinOp("<", col, Literal(5)))[1] == "<"
        flipped = const_comparison(BinOp("<", Literal(5), col))
        assert flipped[1] == ">"
        assert const_comparison(BinOp("=", Literal(1), Literal(2))) is None

    def test_to_sql_roundtrip_text(self):
        expr = BinOp("and", Like(ColumnRef("b", "t"), "a%"), IsNull(ColumnRef("a", "t")))
        text = expr.to_sql()
        assert "LIKE" in text and "IS NULL" in text

    def test_literal_sql_escaping(self):
        assert Literal("o'brien").to_sql() == "'o''brien'"
        assert Literal(None).to_sql() == "NULL"
        assert Literal(True).to_sql() == "TRUE"
