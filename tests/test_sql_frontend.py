"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import LexError, ParseError
from repro.relational import expr as E
from repro.sql import ast_nodes as A
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse_script, parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD"] * 3
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercased(self):
        tokens = tokenize("MyTable")
        assert tokens[0] == Token("IDENT", "mytable", 0)

    def test_numbers(self):
        tokens = tokenize("1 2.5 .5 1e3 2.5E-1")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["INT", "FLOAT", "FLOAT", "FLOAT", "FLOAT"]

    def test_bad_number(self):
        with pytest.raises(LexError):
            tokenize("1.2.3")

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'o''brien'")
        assert tokens[0].kind == "STRING" and tokens[0].value == "o'brien"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_operators_and_synonyms(self):
        tokens = tokenize("a <> b != c <= d")
        ops = [t.value for t in tokens if t.kind == "OP"]
        assert ops == ["!=", "!=", "<="]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n 1")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD", "INT"]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("SELECT @x")

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].kind == "EOF"


class TestSelectParsing:
    def test_minimal(self):
        statement = parse_statement("SELECT * FROM t")
        assert isinstance(statement, A.Select)
        assert statement.items[0].star
        assert statement.from_table.name == "t"

    def test_qualified_star(self):
        statement = parse_statement("SELECT a.*, b.x FROM a, b")
        assert statement.items[0].star and statement.items[0].qualifier == "a"
        assert isinstance(statement.items[1].expr, E.ColumnRef)

    def test_aliases(self):
        statement = parse_statement("SELECT x AS y, z w FROM t AS u")
        assert statement.items[0].alias == "y"
        assert statement.items[1].alias == "w"
        assert statement.from_table.alias == "u"

    def test_joins(self):
        statement = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d, e"
        )
        kinds = [j.kind for j in statement.joins]
        assert kinds == ["inner", "left", "cross", "cross"]
        assert statement.joins[0].condition is not None
        assert statement.joins[2].condition is None

    def test_inner_join_keyword(self):
        statement = parse_statement("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert statement.joins[0].kind == "inner"

    def test_group_having_order_limit(self):
        statement = parse_statement(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
            "HAVING COUNT(*) > 2 ORDER BY n DESC, dept LIMIT 5 OFFSET 2"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True
        assert statement.limit == 5 and statement.offset == 2

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_aggregates(self):
        statement = parse_statement(
            "SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x), COUNT(DISTINCT x) FROM t"
        )
        calls = [item.expr for item in statement.items]
        assert all(isinstance(c, A.AggCall) for c in calls)
        assert calls[0].arg is None
        assert calls[5].distinct

    def test_aggregate_not_allowed_in_where(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t WHERE COUNT(*) > 1")

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT SUM(*) FROM t")

    def test_expression_precedence(self):
        statement = parse_statement("SELECT * FROM t WHERE a + b * 2 = c OR NOT d > 1 AND e < 2")
        # OR is the root.
        assert isinstance(statement.where, E.BinOp) and statement.where.op == "or"

    def test_between_desugars(self):
        statement = parse_statement("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        where = statement.where
        assert isinstance(where, E.BinOp) and where.op == "and"
        assert where.left.op == ">=" and where.right.op == "<="

    def test_not_between(self):
        statement = parse_statement("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5")
        assert isinstance(statement.where, E.UnaryOp)

    def test_predicates(self):
        statement = parse_statement(
            "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL "
            "AND c LIKE 'x%' AND d NOT LIKE 'y%' AND e IN (1, 2) AND f NOT IN (3)"
        )
        conjuncts = E.split_conjuncts(statement.where)
        assert len(conjuncts) == 6

    def test_like_requires_string(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM t WHERE a LIKE 5")

    def test_limit_requires_int(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM t LIMIT 'x'")

    def test_scalar_functions(self):
        statement = parse_statement("SELECT LOWER(name), COALESCE(a, 0) FROM t")
        assert isinstance(statement.items[0].expr, E.FuncCall)

    def test_unknown_function_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT md5(x) FROM t")


class TestDmlParsing:
    def test_insert_positional(self):
        statement = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(statement, A.Insert)
        assert statement.columns is None
        assert len(statement.rows) == 2

    def test_insert_with_columns(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, NULL)")
        assert statement.columns == ["a", "b"]
        assert statement.rows[0][1].value is None

    def test_update(self):
        statement = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'")
        assert isinstance(statement, A.Update)
        assert statement.assignments[0][0] == "a"
        assert isinstance(statement.assignments[1][1], E.BinOp)
        assert statement.where is not None

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a < 0")
        assert isinstance(statement, A.Delete)

    def test_delete_all(self):
        assert parse_statement("DELETE FROM t").where is None


class TestDdlParsing:
    def test_create_table_full(self):
        statement = parse_statement(
            "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT NOT NULL, "
            "nick TEXT UNIQUE, dept INT DEFAULT 1, "
            "FOREIGN KEY (dept) REFERENCES dept (id), UNIQUE (name, dept))"
        )
        assert isinstance(statement, A.CreateTable)
        assert statement.primary_key == ["id"]
        assert ["nick"] in statement.unique and ["name", "dept"] in statement.unique
        assert statement.foreign_keys[0].parent_table == "dept"
        assert statement.columns[3].default == 1

    def test_create_table_table_level_pk(self):
        statement = parse_statement("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert statement.primary_key == ["a", "b"]

    def test_double_pk_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)")
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t (a INT PRIMARY KEY, PRIMARY KEY (a))")

    def test_if_not_exists(self):
        assert parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_create_index(self):
        statement = parse_statement("CREATE UNIQUE INDEX ix ON t (a, b) USING HASH")
        assert statement.unique and statement.kind == "hash"
        statement = parse_statement("CREATE INDEX ix2 ON t (a)")
        assert statement.kind == "btree" and not statement.unique

    def test_create_view(self):
        statement = parse_statement(
            "CREATE VIEW v (x, y) AS SELECT a, b FROM t WHERE a > 0 WITH CHECK OPTION"
        )
        assert isinstance(statement, A.CreateView)
        assert statement.column_names == ["x", "y"]
        assert statement.check_option

    def test_drops(self):
        assert isinstance(parse_statement("DROP TABLE t"), A.DropTable)
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists
        assert isinstance(parse_statement("DROP VIEW v"), A.DropView)
        statement = parse_statement("DROP INDEX ix ON t")
        assert statement.name == "ix" and statement.table == "t"

    def test_txn_statements(self):
        assert isinstance(parse_statement("BEGIN"), A.Begin)
        assert isinstance(parse_statement("COMMIT"), A.Commit)
        assert isinstance(parse_statement("ROLLBACK"), A.Rollback)

    def test_explain(self):
        statement = parse_statement("EXPLAIN SELECT * FROM t")
        assert isinstance(statement, A.Explain)


class TestScripts:
    def test_multi_statement_script(self):
        statements = parse_script("SELECT 1 FROM a; SELECT 2 FROM b;")
        assert len(statements) == 2

    def test_single_statement_enforced(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 FROM a; SELECT 2 FROM b")

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse_statement("SELECT * FROM t;"), A.Select)

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("FROB THE KNOB")
