"""Optimizer v2: estimator bugfixes, histograms, NDV sketch, cost-based
access paths, DP join enumeration, the `_table_stats` system table, stats
persistence, and the statlog-driven adaptive re-planning loop."""

from __future__ import annotations

import pytest

from repro.relational import expr as E
from repro.relational import stats as S
from repro.relational.database import Database
from repro.relational.planner import PlannerConfig


@pytest.fixture
def db() -> Database:
    return Database()


def _eq(col: str, value) -> E.Expr:
    return E.BinOp("=", E.ColumnRef(col), E.Literal(value))


# -- satellite bugfixes ------------------------------------------------------


class TestSelectivityBugfixes:
    def test_is_not_null_without_stats_is_complement(self):
        stats = S.TableStats(row_count=100)  # no column stats at all
        isnull = E.IsNull(E.ColumnRef("c"))
        not_null = E.IsNull(E.ColumnRef("c"), negated=True)
        assert stats.selectivity(isnull) == pytest.approx(0.1)
        # The old code returned 0.1 for both — IS NOT NULL must be 0.9.
        assert stats.selectivity(not_null) == pytest.approx(0.9)

    def test_is_not_null_with_stats(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, NULL), (3, NULL), (4, 40)")
        db.execute("ANALYZE t")
        stats = db.planner.stats["t"]
        assert stats.selectivity(E.IsNull(E.ColumnRef("v"))) == pytest.approx(0.5)
        assert stats.selectivity(
            E.IsNull(E.ColumnRef("v"), negated=True)
        ) == pytest.approx(0.5)

    def test_not_in_is_complement_of_in(self):
        stats = S.TableStats(
            row_count=100,
            columns={"c": S.ColumnStats(n_distinct=10, null_count=0)},
        )
        items = [E.Literal(1), E.Literal(2), E.Literal(3)]
        in_list = E.InList(E.ColumnRef("c"), items)
        not_in = E.InList(E.ColumnRef("c"), items, negated=True)
        assert stats.selectivity(in_list) == pytest.approx(0.3)
        # The old code returned the IN estimate for NOT IN too.
        assert stats.selectivity(not_in) == pytest.approx(0.7)

    def test_in_list_dedupes_constant_items(self):
        stats = S.TableStats(
            row_count=100,
            columns={"c": S.ColumnStats(n_distinct=10, null_count=0)},
        )
        dupes = E.InList(
            E.ColumnRef("c"), [E.Literal(1), E.Literal(1), E.Literal(1)]
        )
        # The old code tripled the estimate for IN (1, 1, 1).
        assert stats.selectivity(dupes) == pytest.approx(0.1)

    def test_in_list_caps_at_one_and_negated_floors_at_zero(self):
        stats = S.TableStats(
            row_count=100,
            columns={"c": S.ColumnStats(n_distinct=2, null_count=0)},
        )
        items = [E.Literal(i) for i in range(5)]
        assert stats.selectivity(E.InList(E.ColumnRef("c"), items)) == 1.0
        assert stats.selectivity(
            E.InList(E.ColumnRef("c"), items, negated=True)
        ) == 0.0


class TestEstimateNormalization:
    def test_clamp_rows(self):
        assert S.clamp_rows(0.2) == 1.0
        assert S.clamp_rows(-5) == 1.0
        assert S.clamp_rows(4.2) == 5.0
        assert S.clamp_rows(float("nan")) == 1.0
        assert S.clamp_rows(float("inf")) == 1.0

    def test_is_valid_estimate(self):
        assert S.is_valid_estimate(1.0)
        assert S.is_valid_estimate(17.0)
        assert not S.is_valid_estimate(0.4)
        assert not S.is_valid_estimate(-3)
        assert not S.is_valid_estimate(float("nan"))
        assert not S.is_valid_estimate("many")

    def test_estimate_rows_never_renders_zero(self, db):
        """A highly selective predicate used to produce `[~0 rows]`."""
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(50):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.execute("ANALYZE t")
        text = db.execute(
            "EXPLAIN SELECT * FROM t WHERE v = 1 AND id = 1"
        ).plan
        assert "~0 rows" not in text
        assert "~1 rows" in text

    def test_verifier_rejects_sub_one_estimates(self, db):
        from repro.analysis.planverify import PlanVerificationError, verify_plan

        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        plan = db.planner.plan_select(
            __import__("repro.sql.parser", fromlist=["parse_statement"])
            .parse_statement("SELECT * FROM t")
        )
        plan.est_rows = 0.4
        with pytest.raises(PlanVerificationError, match="non-normalized"):
            verify_plan(plan)
        plan.est_rows = -3.0
        with pytest.raises(PlanVerificationError, match="negative cardinality"):
            verify_plan(plan)


# -- estimator edge cases ----------------------------------------------------


class TestEstimatorEdgeCases:
    def test_analyze_empty_table(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("ANALYZE t")
        stats = db.planner.stats["t"]
        assert stats.row_count == 0
        assert stats.columns["v"].n_distinct == 0
        assert stats.columns["v"].min_value is None
        # row_count == 0: selectivities still return sane fractions and the
        # normalized estimate is the one-row floor.
        assert 0.0 <= stats.selectivity(_eq("v", 1)) <= 1.0
        assert stats.estimate_rows([_eq("v", 1)]) == 1.0

    def test_all_null_column(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("INSERT INTO t VALUES (1, NULL), (2, NULL), (3, NULL)")
        db.execute("ANALYZE t")
        stats = db.planner.stats["t"]
        column = stats.columns["v"]
        assert column.null_count == 3
        assert column.n_distinct == 0
        assert stats.selectivity(E.IsNull(E.ColumnRef("v"))) == 1.0
        assert stats.selectivity(
            E.IsNull(E.ColumnRef("v"), negated=True)
        ) == 0.0
        # Equality on an all-NULL column can never match.
        assert stats.selectivity(_eq("v", 1)) == 0.0

    def test_ndv_sketch_exact_below_k_and_estimates_beyond(self):
        small = S.DistinctSketch(64)
        for i in range(40):
            small.add(i % 13)
        assert small.estimate() == 13
        big = S.DistinctSketch(64)
        for i in range(20_000):
            big.add(i)
        estimate = big.estimate()
        assert 10_000 <= estimate <= 40_000  # right order of magnitude


class TestHistograms:
    def test_bucket_boundaries_and_range_fractions(self):
        histogram = S.build_histogram(list(range(1000)))
        assert histogram is not None
        assert sum(histogram.counts) == 1000
        assert histogram.bounds[0] == 0
        assert histogram.bounds[-1] == 999
        # Exactly on a bucket boundary and in the interior.
        assert histogram.selectivity_range("<", 500) == pytest.approx(0.5, abs=0.05)
        assert histogram.selectivity_range(">", 900) == pytest.approx(0.1, abs=0.05)
        assert histogram.selectivity_range("<", 0) == 0.0
        assert histogram.selectivity_range(">", 999) <= 0.05

    def test_out_of_range_equality_is_zero(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(200):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.execute("ANALYZE t")
        stats = db.planner.stats["t"]
        assert stats.columns["v"].histogram is not None
        assert stats.selectivity(_eq("v", 10_000)) == 0.0
        assert stats.selectivity(_eq("v", 100)) == pytest.approx(1 / 200, rel=0.5)

    def test_small_tables_have_no_histogram(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("ANALYZE t")
        assert db.planner.stats["t"].columns["id"].histogram is None

    def test_histogram_guides_range_selectivity(self, db):
        """A skewed predicate no longer gets the flat 1/3 guess."""
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(300):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.execute("ANALYZE t")
        stats = db.planner.stats["t"]
        narrow = E.BinOp(">", E.ColumnRef("v"), E.Literal(290))
        wide = E.BinOp(">", E.ColumnRef("v"), E.Literal(10))
        assert stats.selectivity(narrow) < 0.1
        assert stats.selectivity(wide) > 0.9


# -- bounded-memory ANALYZE --------------------------------------------------


class TestBoundedAnalyze:
    def test_pages_and_sketch_bounds(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        for i in range(2000):
            db.execute(f"INSERT INTO t VALUES ({i}, 'val{i}')")
        db.execute("ANALYZE t")
        stats = db.planner.stats["t"]
        assert stats.row_count == 2000
        assert stats.pages > 0
        # KMV estimate, not an exact set of 2000 entries.
        assert 1000 <= stats.columns["id"].n_distinct <= 4000


# -- cost-based access paths -------------------------------------------------


class TestCostModel:
    def test_unanalyzed_tables_keep_legacy_index_priority(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("INSERT INTO t VALUES (1, 1)")
        text = db.execute("EXPLAIN SELECT * FROM t WHERE id = 1").plan
        assert "IndexEqScan" in text

    def test_cost_model_prefers_seq_scan_on_tiny_table(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.execute("ANALYZE t")
        # One heap page: reading it sequentially beats two random probes.
        text = db.execute("EXPLAIN SELECT * FROM t WHERE id = 1").plan
        assert "SeqScan" in text
        assert "cost=" in text

    def test_cost_model_prefers_index_on_selective_big_table(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(600):
            db.execute(f"INSERT INTO t VALUES ({i}, {i % 7})")
        db.execute("ANALYZE t")
        stats = db.planner.stats["t"]
        assert stats.pages >= 2
        text = db.execute("EXPLAIN SELECT * FROM t WHERE id = 123").plan
        assert "IndexEqScan" in text


# -- DP join enumeration -----------------------------------------------------


def _build_chain(db: Database) -> None:
    db.execute("CREATE TABLE a (id INT PRIMARY KEY, k INT)")
    db.execute("CREATE TABLE b (id INT PRIMARY KEY, k INT, j INT)")
    db.execute("CREATE TABLE c (id INT PRIMARY KEY, j INT)")
    insert_a = db.prepare("INSERT INTO a VALUES (?, ?)")
    insert_b = db.prepare("INSERT INTO b VALUES (?, ?, ?)")
    insert_c = db.prepare("INSERT INTO c VALUES (?, ?)")
    for i in range(4):
        insert_a.execute([i, i % 2])
    for i in range(300):
        insert_b.execute([i, i % 2, i % 5])
    for i in range(10):
        insert_c.execute([i, i % 5])


CHAIN_SQL = (
    "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k JOIN c ON c.j = b.j"
)


class TestDPEnumeration:
    def test_dp_runs_only_with_full_stats(self, db):
        _build_chain(db)
        db.query(CHAIN_SQL)
        assert db.planner.metrics["dp_joins"] == 0  # no stats yet
        db.execute("ANALYZE")
        db.query(CHAIN_SQL)
        assert db.planner.metrics["dp_joins"] == 1
        assert db.planner.metrics["join_candidates"] > 0

    def test_dp_and_greedy_agree_on_results(self):
        dp_db = Database()
        greedy_db = Database(
            planner_config=PlannerConfig(join_enumeration="greedy")
        )
        for database in (dp_db, greedy_db):
            _build_chain(database)
            database.execute("ANALYZE")
        expected = [
            ("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k", None),
            (CHAIN_SQL, None),
            (
                "SELECT a.id, b.id FROM a JOIN b ON a.k = b.k "
                "WHERE b.j = 1 ORDER BY a.id, b.id",
                None,
            ),
        ]
        for sql, _ in expected:
            assert dp_db.query(sql) == greedy_db.query(sql)
        assert dp_db.planner.metrics["dp_joins"] > 0
        assert greedy_db.planner.metrics["dp_joins"] == 0

    def test_dp_respects_forced_nl_strategy(self):
        database = Database(planner_config=PlannerConfig(join_strategy="nl"))
        _build_chain(database)
        database.execute("ANALYZE")
        text = database.execute("EXPLAIN " + CHAIN_SQL).plan
        assert "HashJoin" not in text
        assert "NestedLoopJoin" in text

    def test_left_joins_stay_on_greedy_path(self, db):
        _build_chain(db)
        db.execute("ANALYZE")
        rows = db.query(
            "SELECT COUNT(*) FROM c LEFT JOIN b ON c.j = b.j"
        )
        assert db.planner.metrics["dp_joins"] == 0
        assert rows[0][0] >= 10

    def test_every_dp_candidate_is_verified(self, db):
        from repro.analysis import planverify

        _build_chain(db)
        db.execute("ANALYZE")
        previous = planverify.set_verify_plans(True)
        try:
            before = planverify.VERIFY_METRICS["verified_plans"]
            db.query(CHAIN_SQL)
            verified = planverify.VERIFY_METRICS["verified_plans"] - before
        finally:
            planverify.set_verify_plans(previous)
        # At least one verification per costed candidate, plus the final plan.
        assert verified > db.planner.metrics["join_candidates"] >= 1

    def test_join_operators_carry_cost_annotations(self, db):
        _build_chain(db)
        db.execute("ANALYZE")
        text = db.execute("EXPLAIN " + CHAIN_SQL).plan
        assert "cost=" in text
        assert "rows," in text  # "[~N rows, cost=C]" on join operators


# -- _table_stats system table ----------------------------------------------


class TestTableStatsSystemTable:
    def test_empty_before_analyze(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        assert db.query("SELECT * FROM _table_stats") == []

    def test_rows_after_analyze(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL)")
        db.execute("ANALYZE t")
        rows = db.query(
            "SELECT table_name, column_name, row_count, n_distinct, null_count "
            "FROM _table_stats ORDER BY column_name"
        )
        assert rows == [("t", "id", 3, 3, 0), ("t", "v", 3, 2, 1)]

    def test_histogram_buckets_column(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(200):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.execute("ANALYZE t")
        rows = db.query(
            "SELECT histogram_buckets FROM _table_stats WHERE column_name = 'id'"
        )
        assert rows[0][0] is not None and rows[0][0] > 1

    def test_name_is_reserved(self, db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError, match="reserved"):
            db.execute("CREATE TABLE _table_stats (id INT PRIMARY KEY)")


# -- stats persistence -------------------------------------------------------


class TestStatsPersistence:
    def test_stats_survive_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(150):
            db.execute(f"INSERT INTO t VALUES ({i}, {i % 4})")
        db.execute("ANALYZE t")
        original = db.planner.stats["t"]
        db.close()

        reopened = Database(path)
        try:
            restored = reopened.planner.stats.get("t")
            assert restored is not None
            assert restored.row_count == original.row_count
            assert restored.pages == original.pages
            column = restored.columns["v"]
            assert column.n_distinct == original.columns["v"].n_distinct
            assert column.min_value == 0 and column.max_value == 3
            assert restored.columns["id"].histogram is not None
            rows = reopened.query(
                "SELECT row_count FROM _table_stats WHERE column_name = 'id'"
            )
            assert rows == [(150,)]
        finally:
            reopened.close()

    def test_date_minmax_roundtrip(self, tmp_path):
        import datetime

        path = str(tmp_path / "db")
        db = Database(path)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, d DATE)")
        db.execute("INSERT INTO t VALUES (1, '2020-01-02'), (2, '2021-03-04')")
        db.execute("ANALYZE t")
        db.close()
        reopened = Database(path)
        try:
            column = reopened.planner.stats["t"].columns["d"]
            assert column.min_value == datetime.date(2020, 1, 2)
            assert column.max_value == datetime.date(2021, 3, 4)
        finally:
            reopened.close()


# -- adaptive re-planning ----------------------------------------------------


class TestAdaptiveReplan:
    def _misestimate(self, db: Database) -> str:
        """ANALYZE on tiny tables, then grow one 100x so the cached plan's
        estimates are off by far more than the replan factor."""
        _build_chain(db)
        db.execute("ANALYZE")
        sql = CHAIN_SQL
        db.query(sql)  # plan + cache under fresh (soon stale) stats
        grow = db.prepare("INSERT INTO a VALUES (?, ?)")
        for i in range(4, 500):
            grow.execute([i, i % 2])
        return sql

    def test_sampled_misestimate_triggers_replan(self):
        db = Database(statlog_sample_every=2)
        sql = self._misestimate(db)
        for _ in range(4):
            db.query(sql)
        assert db.planner.metrics["replans"] == 1
        assert db.plan_cache.stats["feedback_drops"] == 1
        # Fresh statistics were gathered as part of the re-plan.
        assert db.planner.stats["a"].row_count == 500
        assert db.metrics_snapshot()["planner"]["replans"] == 1

    def test_replanned_statement_recaches_and_does_not_loop(self):
        db = Database(statlog_sample_every=2)
        sql = self._misestimate(db)
        for _ in range(10):
            db.query(sql)
        assert db.planner.metrics["replans"] == 1  # once, not per sample
        assert db.plan_cache.stats["hits"] > 0

    def test_explain_analyze_triggers_and_reports_replans(self):
        db = Database()  # no sampling: EXPLAIN ANALYZE is the feedback path
        sql = self._misestimate(db)
        first = db.execute("EXPLAIN ANALYZE " + sql).plan
        assert "Adaptive: replans=1" in first
        second = db.execute("EXPLAIN ANALYZE " + sql).plan
        assert "Adaptive: replans=1" in second  # fresh stats estimate well

    def test_adaptive_replan_can_be_disabled(self):
        db = Database(
            planner_config=PlannerConfig(adaptive_replan=False),
            statlog_sample_every=2,
        )
        sql = self._misestimate(db)
        for _ in range(6):
            db.query(sql)
        assert db.planner.metrics["replans"] == 0

    def test_accurate_estimates_never_replan(self):
        db = Database(statlog_sample_every=1)
        _build_chain(db)
        db.execute("ANALYZE")
        for _ in range(5):
            db.query("SELECT COUNT(*) FROM b WHERE k = 1")
        assert db.planner.metrics["replans"] == 0


# -- config fingerprint ------------------------------------------------------


class TestConfigFingerprint:
    def test_new_knobs_in_fingerprint(self):
        base = PlannerConfig().fingerprint()
        assert PlannerConfig(join_enumeration="greedy").fingerprint() != base
        assert PlannerConfig(max_dp_relations=3).fingerprint() != base
        assert PlannerConfig(adaptive_replan=False).fingerprint() != base
        assert PlannerConfig(replan_factor=2.0).fingerprint() != base
