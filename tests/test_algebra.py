"""Direct unit tests of the physical operators (no SQL front-end)."""

import pytest

from repro.errors import PlanError
from repro.relational import expr as E
from repro.relational.algebra import (
    Aggregate,
    AggSpec,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Project,
    Rename,
    RowSource,
    Sort,
    UnionAll,
)
from repro.relational.expr import BinOp, ColumnRef, Literal, RowLayout
from repro.relational.types import ColumnType

INT = ColumnType.INT
TEXT = ColumnType.TEXT


def source(alias, names, types, rows):
    layout = RowLayout([(alias, n, t) for n, t in zip(names, types)])
    return RowSource(layout, rows, name=alias)


@pytest.fixture
def numbers():
    return source("n", ["a", "b"], [INT, INT], [(1, 10), (2, 20), (3, 30), (2, 21)])


class TestLeavesAndUnary:
    def test_rowsource_restartable(self, numbers):
        assert list(numbers.rows()) == list(numbers.rows())

    def test_filter_three_valued(self):
        src = source("s", ["x"], [INT], [(1,), (None,), (5,)])
        predicate = E.bind(BinOp(">", ColumnRef("x", "s"), Literal(2)), src.layout)
        assert list(Filter(src, predicate).rows()) == [(5,)]  # NULL dropped

    def test_project_computes(self, numbers):
        expr = E.bind(
            BinOp("+", ColumnRef("a", "n"), ColumnRef("b", "n")), numbers.layout
        )
        project = Project(numbers, [expr], ["s"], [INT])
        assert [r[0] for r in project.rows()] == [11, 22, 33, 23]
        assert project.layout.names() == ["s"]

    def test_project_length_mismatch(self, numbers):
        with pytest.raises(PlanError):
            Project(numbers, [], ["x"], [INT])

    def test_sort_multi_key_stability(self):
        src = source("s", ["k", "v"], [INT, TEXT], [(2, "b"), (1, "a"), (2, "a"), (None, "z")])
        keys = [
            (E.bind(ColumnRef("k", "s"), src.layout), True),
            (E.bind(ColumnRef("v", "s"), src.layout), False),
        ]
        ordered = list(Sort(src, keys).rows())
        assert ordered == [(None, "z"), (1, "a"), (2, "b"), (2, "a")]

    def test_limit_offset(self, numbers):
        assert list(Limit(numbers, 2, offset=1).rows()) == [(2, 20), (3, 30)]
        assert list(Limit(numbers, None, offset=3).rows()) == [(2, 21)]
        with pytest.raises(PlanError):
            Limit(numbers, -1)

    def test_distinct(self):
        src = source("s", ["x"], [INT], [(1,), (2,), (1,), (None,), (None,)])
        assert list(Distinct(src).rows()) == [(1,), (2,), (None,)]

    def test_rename_requalifies(self, numbers):
        renamed = Rename(numbers, "m", ["p", "q"])
        assert renamed.layout.resolve("m", "p") == 0
        assert list(renamed.rows()) == list(numbers.rows())
        with pytest.raises(PlanError):
            Rename(numbers, "m", ["only-one"])

    def test_union_all(self, numbers):
        doubled = UnionAll(numbers, numbers)
        assert len(list(doubled.rows())) == 8
        with pytest.raises(PlanError):
            UnionAll(numbers, source("x", ["a"], [INT], []))


def join_fixtures():
    left = source("l", ["k", "lv"], [INT, TEXT], [(1, "a"), (2, "b"), (None, "n"), (2, "b2")])
    right = source("r", ["k", "rv"], [INT, TEXT], [(2, "x"), (3, "y"), (None, "m"), (2, "x2")])
    return left, right


class TestJoins:
    def expected_inner(self):
        # k=2 on both sides: (b,x),(b,x2),(b2,x),(b2,x2); NULLs never match.
        return {("b", "x"), ("b", "x2"), ("b2", "x"), ("b2", "x2")}

    def test_hash_join(self):
        left, right = join_fixtures()
        join = HashJoin(left, right, [0], [0])
        got = {(row[1], row[3]) for row in join.rows()}
        assert got == self.expected_inner()

    def test_merge_join(self):
        left, right = join_fixtures()
        join = MergeJoin(left, right, [0], [0])
        got = {(row[1], row[3]) for row in join.rows()}
        assert got == self.expected_inner()

    def test_nested_loop_join_equijoin(self):
        left, right = join_fixtures()
        predicate = E.BinOp("=", ColumnRef("k", "l"), ColumnRef("k", "r"))
        bound = E.bind(predicate, left.layout + right.layout)
        join = NestedLoopJoin(left, right, bound)
        got = {(row[1], row[3]) for row in join.rows()}
        assert got == self.expected_inner()

    def test_left_outer_pads(self):
        left, right = join_fixtures()
        join = HashJoin(left, right, [0], [0], left_outer=True)
        rows = list(join.rows())
        padded = [row for row in rows if row[2] is None and row[3] is None]
        assert {row[1] for row in padded} == {"a", "n"}  # k=1 and k=NULL

    def test_nl_left_outer(self):
        left, right = join_fixtures()
        predicate = E.bind(
            E.BinOp("=", ColumnRef("k", "l"), ColumnRef("k", "r")),
            left.layout + right.layout,
        )
        join = NestedLoopJoin(left, right, predicate, left_outer=True)
        assert len(list(join.rows())) == 4 + 2  # 4 matches + 2 padded

    def test_hash_join_residual(self):
        left, right = join_fixtures()
        residual = E.bind(
            E.BinOp("=", ColumnRef("rv", "r"), Literal("x")),
            left.layout + right.layout,
        )
        join = HashJoin(left, right, [0], [0], residual=residual)
        got = {(row[1], row[3]) for row in join.rows()}
        assert got == {("b", "x"), ("b2", "x")}

    def test_empty_key_list_rejected(self):
        left, right = join_fixtures()
        with pytest.raises(PlanError):
            HashJoin(left, right, [], [])
        with pytest.raises(PlanError):
            MergeJoin(left, right, [0], [])

    def test_cross_join_via_nl(self):
        left, right = join_fixtures()
        join = NestedLoopJoin(left, right, None)
        assert len(list(join.rows())) == 16


class TestAggregateOperator:
    def make(self, rows, group=True, func="sum", distinct=False):
        src = source("s", ["g", "v"], [INT, INT], rows)
        groups = (
            [(E.bind(ColumnRef("g", "s"), src.layout), "g", INT)] if group else []
        )
        arg = None if func == "count" else E.bind(ColumnRef("v", "s"), src.layout)
        spec = AggSpec(func, arg, "out", INT, distinct=distinct)
        return Aggregate(src, groups, [spec])

    def test_sum_by_group(self):
        agg = self.make([(1, 10), (1, 5), (2, 7)])
        assert sorted(agg.rows()) == [(1, 15), (2, 7)]

    def test_nulls_ignored_by_sum(self):
        agg = self.make([(1, None), (1, 5)])
        assert list(agg.rows()) == [(1, 5)]

    def test_all_null_group_yields_null(self):
        agg = self.make([(1, None)])
        assert list(agg.rows()) == [(1, None)]

    def test_count_star_counts_nulls(self):
        agg = self.make([(1, None), (1, 2)], func="count")
        assert list(agg.rows()) == [(1, 2)]

    def test_min_max(self):
        rows = [(1, 5), (1, -2), (1, 9)]
        assert list(self.make(rows, func="min").rows()) == [(1, -2)]
        assert list(self.make(rows, func="max").rows()) == [(1, 9)]

    def test_distinct_sum(self):
        agg = self.make([(1, 5), (1, 5), (1, 2)], func="sum", distinct=True)
        assert list(agg.rows()) == [(1, 7)]

    def test_global_aggregate_on_empty_input(self):
        agg = self.make([], group=False, func="count")
        assert list(agg.rows()) == [(0,)]

    def test_grouped_aggregate_on_empty_input(self):
        agg = self.make([], group=True)
        assert list(agg.rows()) == []

    def test_agg_spec_validation(self):
        with pytest.raises(PlanError):
            AggSpec("median", None, "x", INT)
        with pytest.raises(PlanError):
            AggSpec("sum", None, "x", INT)

    def test_explain_tree_shape(self):
        agg = self.make([(1, 1)])
        text = agg.explain()
        assert text.splitlines()[0].startswith("Aggregate")
        assert "RowSource" in text
