"""Crash-consistency: fault injection, WAL v2, checkpoints, degradation.

The heart of this file is the **crash-point exhaustion harness**: a mixed
workload (inserts, a view update, DDL, an explicit checkpoint, committed
and rolled-back transactions) is first run once to count every
fault-injectable I/O call, then re-run once per call with a simulated
kill -9 injected there.  Every crashed world is reopened and must satisfy
the recovery invariants:

* the observable state equals the state after the last completed step or
  after the in-flight step (statement atomicity — never in between);
* ``integrity_check()`` is clean (indexes, FKs, catalog all consistent);
* a pure crash never degrades the reopened database to read-only.

Set ``CRASH_MAX_POINTS`` to bound the exhaustion for smoke runs (CI); by
default every enumerated point is exercised.
"""

import json
import os
import shutil
import zlib

import pytest

from repro.errors import ReadOnlyError, StorageError
from repro.relational.database import Database
from repro.relational.faults import (
    FaultInjector,
    InjectedCrash,
    IOShim,
    crash_points,
    exhaust_crash_points,
    select_points,
)
from repro.relational.integrity import (
    JOURNAL_NAME,
    read_checkpoint_journal,
    rollback_checkpoint_journal,
    write_checkpoint_journal,
)
from repro.relational.wal import _frame


def _max_points(default=None):
    value = os.environ.get("CRASH_MAX_POINTS")
    return int(value) if value else default


def _hard_close(db):
    """Release file handles the way a dead process would: no flushing."""
    for pager in db._pagers.values():
        if pager._fd is not None:
            os.close(pager._fd)
            pager._fd = None
    if db.wal is not None and db.wal._fd is not None:
        os.close(db.wal._fd)
        db.wal._fd = None


def _observe(db):
    """The logical state the invariants compare: rows and object names."""
    tables = {}
    for name in db.table_names():
        tables[name] = sorted(db.catalog.table(name).rows())
    return {"tables": tables, "views": sorted(db.view_names())}


class _Workload:
    """The mixed workload the exhaustion harness drives.

    Each call to :meth:`run` starts from an empty directory and performs
    the same step sequence, snapshotting the expected logical state after
    every step; a crash leaves ``self.completed`` at the last finished
    step so the verifier knows which snapshots are legal outcomes.
    """

    def __init__(self, path, db_kwargs=None):
        self.path = path
        #: extra Database() arguments (e.g. a tiny pool_size to force the
        #: no-steal policy to carry dirty pages past the pool target)
        self.db_kwargs = db_kwargs or {}
        #: per-step expected states, recorded once by the enumeration pass
        #: (the step sequence is deterministic, so they hold for every run)
        self.baseline = []
        self.completed = 0

    def steps(self, db):
        yield db.execute, "CREATE TABLE dept (id INT PRIMARY KEY, name TEXT)"
        yield db.execute, (
            "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, dept_id INT, "
            "FOREIGN KEY (dept_id) REFERENCES dept (id))"
        )
        yield db.execute, "INSERT INTO dept VALUES (1, 'eng'), (2, 'sales')"
        yield db.execute, (
            "INSERT INTO emp VALUES (1, 'ada', 1), (2, 'bob', 2), (3, 'cyn', 1)"
        )
        yield db.execute, (
            "CREATE VIEW eng AS SELECT id, name, dept_id FROM emp "
            "WHERE dept_id = 1 WITH CHECK OPTION"
        )
        yield (lambda: db.update("eng", {"name": "ADA"}, "id = 1")), None
        yield db.execute, "CREATE INDEX ix_emp_dept ON emp (dept_id)"
        yield db.checkpoint, None
        yield db.execute, "BEGIN"
        yield db.execute, "INSERT INTO emp VALUES (4, 'dee', 2)"
        yield db.execute, "COMMIT"
        yield db.execute, "BEGIN"
        yield db.execute, "INSERT INTO emp VALUES (5, 'eve', 1)"
        yield db.execute, "ROLLBACK"
        yield db.execute, "DELETE FROM emp WHERE id = 2"
        yield db.close, None

    def run(self, shim):
        shutil.rmtree(self.path, ignore_errors=True)
        recording = shim.crash_at is None  # the enumeration pass
        if recording:
            self.baseline = []
        self.completed = 0
        db = Database(path=self.path, fsync=True, io=shim, **self.db_kwargs)
        try:
            for func, arg in self.steps(db):
                func(arg) if arg is not None else func()
                self.completed += 1
                if recording:
                    # The baseline is the *durable* state after each step:
                    # inside an open transaction nothing new is durable yet
                    # (a crash loses the uncommitted group), and close()
                    # released the handles, so both reuse the prior entry.
                    if db.wal is None or db.txn.active:
                        self.baseline.append(self.baseline[-1])
                    else:
                        self.baseline.append(_observe(db))
        except BaseException:
            _hard_close(db)
            raise

    def verify(self, shim):
        db = Database(path=self.path, fsync=False, **self.db_kwargs)
        try:
            assert not db.read_only, (
                f"pure crash degraded the database; events="
                f"{db._corruption_events} calls={shim.calls[-3:]}"
            )
            report = db.integrity_check()
            assert report.ok, (
                f"integrity violations after crash at call {shim.crash_at}: "
                f"{report.to_lines()}"
            )
            observed = _observe(db)
            # Statement atomicity: the recovered world is either before or
            # after the in-flight step, never in between.
            legal = [self.baseline[self.completed - 1]] if self.completed else [
                {"tables": {}, "views": []}
            ]
            if self.completed < len(self.baseline):
                legal.append(self.baseline[self.completed])
            assert observed in legal, (
                f"crash at call {shim.crash_at} (step {self.completed + 1} "
                f"in flight, last I/O {shim.calls[-1:]}) recovered to a "
                f"state matching no step boundary:\n{observed}\nlegal:\n{legal}"
            )
        finally:
            _hard_close(db)


class TestCrashExhaustion:
    def test_mixed_workload_every_crash_point(self, tmp_path):
        workload = _Workload(str(tmp_path / "db"))
        # Enumeration pass establishes the baseline snapshots and coverage.
        counter = crash_points(workload.run)
        assert counter.io_calls > 30, "workload exercises too few I/O points"
        ops = {op for op, _ in counter.calls}
        assert {"write", "fsync", "ftruncate", "replace", "remove"} <= ops
        points = exhaust_crash_points(
            workload.run, workload.verify, max_points=_max_points()
        )
        assert points, "no crash points exercised"
        if _max_points() is None:
            assert len(points) == counter.io_calls  # full coverage

    def test_mixed_workload_under_pool_pressure(self, tmp_path):
        """The full exhaustion sweep with a pool of two pages.

        Nearly every page access overflows the pool, so the no-steal
        policy is exercised at each crash point: a dirty page stolen to
        disk would surface as a recovery mismatch here, and a broken
        eviction-queue discipline raises StorageError inside the pager
        before the crash even lands.
        """
        workload = _Workload(
            str(tmp_path / "db"),
            db_kwargs={"pool_size": 2, "prefetch_pages": 4},
        )
        points = exhaust_crash_points(
            workload.run, workload.verify, max_points=_max_points(25)
        )
        assert points

    def test_mixed_workload_torn_writes(self, tmp_path):
        """Crashes that tear the in-flight write half-way still recover."""
        workload = _Workload(str(tmp_path / "db"))
        points = exhaust_crash_points(
            workload.run, workload.verify, torn=True,
            max_points=_max_points(25),
        )
        assert points

    def test_vectorized_execution_survives_crash_exhaustion(self, tmp_path):
        """The batched executor is the recovery-verification path too.

        Database defaults to vectorized execution, so every recovery +
        integrity check above already runs through batched scans; this
        pins that explicitly with a small workload and exercises a
        batched query against each recovered database.
        """
        from repro.relational.planner import PlannerConfig

        assert PlannerConfig().vectorized, "vectorized must be the default"
        path = str(tmp_path / "db")

        def run(shim):
            shutil.rmtree(path, ignore_errors=True)
            db = Database(path=path, fsync=True, io=shim)
            try:
                db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, val INT)")
                db.execute(
                    "INSERT INTO t VALUES (1, 'a', 10), (2, 'b', NULL), (3, 'c', 30)"
                )
                db.checkpoint()
                db.execute("UPDATE t SET val = 11 WHERE id = 1")
                db.execute("DELETE FROM t WHERE id = 2")
                db.close()
            except BaseException:
                _hard_close(db)
                raise

        def verify(shim):
            db = Database(path=path, fsync=False)
            try:
                assert db.planner_config.vectorized
                report = db.integrity_check()  # scans via scan_batched()
                assert report.ok, report.to_lines()
                # A query through the batched executor agrees with the
                # tuple-at-a-time heap scan of the same table.  (A crash
                # before the CREATE committed recovers to no table at all.)
                if "t" in db.table_names():
                    rows = db.query("SELECT id, name, val FROM t ORDER BY id")
                    assert rows == sorted(db.catalog.table("t").rows())
            finally:
                _hard_close(db)

        points = exhaust_crash_points(run, verify, max_points=_max_points(30))
        assert points, "no crash points exercised"

    def test_select_points_sampling(self):
        assert select_points(5, None) == [1, 2, 3, 4, 5]
        assert select_points(5, 10) == [1, 2, 3, 4, 5]
        sampled = select_points(100, 7)
        assert sampled[0] == 1 and sampled[-1] == 100 and len(sampled) == 7
        assert select_points(0, 5) == []
        # CRASH_MAX_POINTS=1 must test a single point, not crash.
        assert select_points(100, 1) == [1]
        assert select_points(1, 1) == [1]
        assert select_points(5, 0) == []


def _setup_disk(path, rows=3):
    db = Database(path=path, fsync=False)
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
    for i in range(rows):
        db.insert("t", {"a": i, "b": f"row-{i}"})
    return db


class TestCheckpointOrdering:
    """Targeted crashes at each stage of the 5-step checkpoint protocol."""

    def _crash_checkpoint_at(self, path, op, occurrence=1):
        """Crash a checkpoint at the Nth shim call matching *op*."""
        db = _setup_disk(path)
        db.checkpoint()
        db.insert("t", {"a": 100, "b": "after-ckpt"})
        db.update("t", {"b": "ROW-0"}, "a = 0")
        counting = FaultInjector()
        db._io = counting
        for pager in db._pagers.values():
            pager._io = counting
        db.wal._io = counting
        db.checkpoint()
        hits = [i for i, (o, _) in enumerate(counting.calls, 1) if o == op]
        assert len(hits) >= occurrence, f"checkpoint never reached {op}"
        db.close()

        # Fresh database, same content, crash this time.
        shutil.rmtree(path)
        db = _setup_disk(path)
        db.checkpoint()
        db.insert("t", {"a": 100, "b": "after-ckpt"})
        db.update("t", {"b": "ROW-0"}, "a = 0")
        shim = FaultInjector(crash_at=hits[occurrence - 1])
        db._io = shim
        for pager in db._pagers.values():
            pager._io = shim
        db.wal._io = shim
        with pytest.raises(InjectedCrash):
            db.checkpoint()
        _hard_close(db)
        return Database(path=path, fsync=False)

    EXPECTED = [(0, "ROW-0"), (1, "row-1"), (2, "row-2"), (100, "after-ckpt")]

    @pytest.mark.parametrize(
        "op", ["write", "fsync", "replace", "ftruncate", "remove"]
    )
    def test_crash_at_each_protocol_stage(self, tmp_path, op, request):
        """No stage of the checkpoint may lose or double-apply rows.

        ``write`` hits the journal, ``fsync`` the heap flush, ``replace``
        the catalog commit point, ``ftruncate`` the WAL truncation, and
        ``remove`` the journal deletion — one crash per protocol step.
        """
        db = self._crash_checkpoint_at(str(tmp_path / "db"), op)
        try:
            assert not db.read_only
            assert db.query("SELECT * FROM t ORDER BY a") == self.EXPECTED
            assert db.integrity_check().ok
        finally:
            _hard_close(db)

    def test_crash_between_rename_and_truncate_does_not_double_apply(
        self, tmp_path
    ):
        """The historical hole: catalog renamed, WAL not yet truncated.

        Without group sequence numbers the replay would re-apply every
        committed group on top of the already-flushed heaps, doubling rows
        (inserts) or corrupting them (updates).  ``checkpoint_seq`` makes
        replay skip the covered groups.
        """
        db = self._crash_checkpoint_at(str(tmp_path / "db"), "ftruncate")
        try:
            counts = db.query("SELECT COUNT(*) FROM t")
            assert counts == [(4,)], f"rows double-applied: {counts}"
            assert db.wal.recovery_stats["skipped_groups"] > 0
        finally:
            _hard_close(db)

    def test_journal_roundtrip_and_idempotent_rollback(self, tmp_path):
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        db.checkpoint()
        db.update("t", {"b": "CHANGED"}, "a = 1")
        journal_path = os.path.join(path, JOURNAL_NAME)
        assert write_checkpoint_journal(journal_path, 7, db._pagers)
        journal = read_checkpoint_journal(journal_path)
        assert journal is not None and journal["seq"] == 7
        db.close()  # flushes CHANGED into the heap (and clears the journal)
        # Roll back twice: idempotent, lands on the checkpointed image.
        rollback_checkpoint_journal(journal, path)
        rollback_checkpoint_journal(journal, path)
        db2 = Database(path=path, fsync=False)
        try:
            # Heap is pre-update, and the WAL was truncated by close(), so
            # the update is gone — exactly the journal's contract.
            assert db2.query("SELECT b FROM t WHERE a = 1") == [("row-1",)]
        finally:
            _hard_close(db2)

    def test_incomplete_journal_is_ignored(self, tmp_path):
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        db.close()
        with open(os.path.join(path, JOURNAL_NAME), "w") as fh:
            fh.write('{"t": "begin", "v": 1, "seq": 99, "files"')  # torn
        db2 = Database(path=path, fsync=False)
        try:
            assert not db2.read_only
            assert not os.path.exists(os.path.join(path, JOURNAL_NAME))
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 3
        finally:
            db2.close()


class TestWalV2:
    def test_flipped_byte_degrades_to_read_only(self, tmp_path):
        """A single flipped WAL byte is caught by the CRC: the database
        opens read-only with a populated integrity report — no traceback."""
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)  # crash: WAL holds all rows
        wal_path = os.path.join(path, "wal.log")
        with open(wal_path, "r+b") as fh:
            data = fh.read()
            # Flip a byte inside the first record's JSON payload, so valid
            # records follow the damage (real corruption, not a torn tail).
            target = data.index(b'"t"')
            fh.seek(target)
            fh.write(bytes([data[target] ^ 0x40]))

        db2 = Database(path=path, fsync=False)  # must not raise
        try:
            assert db2.read_only
            report = db2.integrity_check()
            assert not report.ok
            assert any(f.component == "wal" for f in report.findings)
            assert any("CRC" in f.message for f in report.findings)
            snap = db2.metrics_snapshot()["integrity"]
            assert snap["read_only"] is True
            assert snap["corruption_events"] >= 1
            assert snap["wal_crc_errors"] >= 1
        finally:
            db2.close()

    def test_read_only_gates_every_write_path(self, tmp_path):
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)
        with open(os.path.join(path, "wal.log"), "r+b") as fh:
            data = fh.read()
            fh.seek(data.index(b'"t"'))
            fh.write(b"X")
        db2 = Database(path=path, fsync=False)
        try:
            # Reads still work on whatever replayed cleanly.
            db2.query("SELECT * FROM t")
            with pytest.raises(ReadOnlyError):
                db2.insert("t", {"a": 50, "b": "x"})
            with pytest.raises(ReadOnlyError):
                db2.execute("UPDATE t SET b = 'x' WHERE a = 0")
            with pytest.raises(ReadOnlyError):
                db2.execute("DELETE FROM t")
            with pytest.raises(ReadOnlyError):
                db2.execute("CREATE TABLE u (a INT)")
            with pytest.raises(ReadOnlyError):
                db2.execute("DROP TABLE t")
            with pytest.raises(ReadOnlyError):
                db2.execute("CREATE INDEX ix ON t (b)")
            wal_size = os.path.getsize(os.path.join(path, "wal.log"))
            db2.checkpoint()  # silently does nothing
            assert os.path.getsize(os.path.join(path, "wal.log")) == wal_size
        finally:
            db2.close()
        # close() must not have "repaired" anything: still degraded on reopen.
        db3 = Database(path=path, fsync=False)
        try:
            assert db3.read_only
        finally:
            db3.close()

    def test_v1_checksum_less_wal_still_replays(self, tmp_path):
        """Regression: logs written before the v2 format open cleanly."""
        path = str(tmp_path / "db")
        db = _setup_disk(path, rows=1)
        db.close()  # checkpoint; WAL now empty
        v1 = [
            json.dumps({"t": "insert", "tab": "t", "row": [7, "seven"]}),
            json.dumps({"t": "commit"}),
            json.dumps({"t": "update", "tab": "t", "old": [7, "seven"], "new": [7, "SEVEN"]}),
            json.dumps({"t": "commit"}),
        ]
        with open(os.path.join(path, "wal.log"), "w") as fh:
            fh.write("\n".join(v1) + "\n")
        db2 = Database(path=path, fsync=False)
        try:
            assert not db2.read_only
            assert db2.query("SELECT * FROM t ORDER BY a") == [
                (0, "row-0"), (7, "SEVEN"),
            ]
        finally:
            db2.close()

    def test_torn_tail_still_tolerated(self, tmp_path):
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)
        with open(os.path.join(path, "wal.log"), "ab") as fh:
            fh.write(b"2|9|deadbeef|{\"t\": \"ins")  # torn final write
        db2 = Database(path=path, fsync=False)
        try:
            assert not db2.read_only
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 3
            assert db2.wal.recovery_stats["torn_tail_records"] >= 1
        finally:
            db2.close()

    def test_torn_tail_is_truncated_before_new_appends(self, tmp_path):
        """Crash -> recover -> commit -> crash (two generations).

        Recovery discards a torn tail; it must also truncate it from the
        file — the fd is O_APPEND, so a leftover newline-less fragment
        would otherwise share a line with the first post-recovery commit
        and the SECOND recovery would read that acknowledged group as
        corruption, bricking the database.
        """
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)
        wal_path = os.path.join(path, "wal.log")
        committed_size = os.path.getsize(wal_path)
        with open(wal_path, "ab") as fh:
            fh.write(b'2|9|deadbeef|{"t": "ins')  # torn write, no newline
        db2 = Database(path=path, fsync=False)
        assert os.path.getsize(wal_path) == committed_size  # tail gone
        assert db2.wal.recovery_stats["tail_truncated_bytes"] > 0
        db2.insert("t", {"a": 50, "b": "second-generation"})
        _hard_close(db2)
        db3 = Database(path=path, fsync=False)
        try:
            assert not db3.read_only, f"events={db3._corruption_events}"
            assert db3.execute("SELECT COUNT(*) FROM t").scalar() == 4
            assert db3.query("SELECT b FROM t WHERE a = 50") == [
                ("second-generation",)
            ]
            assert db3.integrity_check().ok
        finally:
            _hard_close(db3)

    def test_uncommitted_tail_is_truncated_on_recovery(self, tmp_path):
        """Orphan uncommitted records are erased, not merely skipped.

        If they stayed in the file, the next commit (a different group
        seq) would follow them as a group-seq-mismatching continuation and
        the following open would silently drop that acknowledged group.
        """
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)
        wal_path = os.path.join(path, "wal.log")
        committed_size = os.path.getsize(wal_path)
        orphan = _frame(4, json.dumps({"t": "insert", "tab": "t", "row": [9, "orphan"]}))
        with open(wal_path, "ab") as fh:
            fh.write(orphan.encode() + b"\n")
        db2 = Database(path=path, fsync=False)
        assert os.path.getsize(wal_path) == committed_size
        db2.insert("t", {"a": 4, "b": "four"})
        _hard_close(db2)
        db3 = Database(path=path, fsync=False)
        try:
            assert not db3.read_only, f"events={db3._corruption_events}"
            # The committed post-recovery row survives; the orphan doesn't.
            assert db3.query("SELECT a FROM t ORDER BY a") == [
                (0,), (1,), (2,), (4,),
            ]
        finally:
            _hard_close(db3)

    def test_undecodable_bytes_treated_as_torn_line(self, tmp_path):
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)
        with open(os.path.join(path, "wal.log"), "ab") as fh:
            fh.write(b"\xff\xfe garbage \x80\n")
        db2 = Database(path=path, fsync=False)
        try:
            assert not db2.read_only
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 3
        finally:
            db2.close()

    def test_unknown_record_kind_rejected(self, tmp_path):
        """An unknown ``t`` mid-log is corruption (valid records follow)."""
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)
        wal_path = os.path.join(path, "wal.log")
        unknown = _frame(1, json.dumps({"t": "mystery", "tab": "t"}))
        with open(wal_path, "rb") as fh:
            original = fh.read()
        with open(wal_path, "wb") as fh:
            fh.write(unknown.encode() + b"\n" + original)
        db2 = Database(path=path, fsync=False)
        try:
            assert db2.read_only  # valid records followed the junk
        finally:
            db2.close()

    def test_unknown_record_kind_at_tail_discarded(self, tmp_path):
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)
        unknown = _frame(9, json.dumps({"t": "mystery", "tab": "t"}))
        with open(os.path.join(path, "wal.log"), "ab") as fh:
            fh.write(unknown.encode() + b"\n")
        db2 = Database(path=path, fsync=False)
        try:
            assert not db2.read_only
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 3
        finally:
            db2.close()

    def test_frame_crc_covers_seq(self):
        """Splicing a record into a different group must break the CRC."""
        payload = json.dumps({"t": "commit"})
        framed = _frame(3, payload)
        spliced = framed.replace("2|3|", "2|4|", 1)
        _version, seq, crc, body = spliced.split("|", 3)
        assert zlib.crc32(f"{seq}|{body}".encode()) & 0xFFFFFFFF != int(crc, 16)


class TestInjectedFailures:
    def test_short_writes_are_retried_to_completion(self, tmp_path):
        """Every durability write loops until fully written (satellite #1)."""
        path = str(tmp_path / "db")
        shim = FaultInjector(short_writes=7)
        db = Database(path=path, fsync=False, io=shim)
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
        db.bulk_insert("t", [{"a": i, "b": "x" * 50} for i in range(40)])
        db.close()
        assert any(op == "write" for op, _ in shim.calls)
        db2 = Database(path=path, fsync=False)
        try:
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 40
            assert db2.integrity_check().ok
        finally:
            db2.close()

    def test_fsync_failure_surfaces_as_storage_error(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=True, io=FaultInjector(fail_fsync=True))
        try:
            with pytest.raises(StorageError):
                db.execute("CREATE TABLE t (a INT)")
        finally:
            _hard_close(db)

    def test_fsync_failure_during_commit_is_atomic(self, tmp_path):
        """A commit whose fsync fails must not survive in the log.

        The group (commit marker included) is already written when fsync
        raises; without the rollback truncation, recovery would replay a
        commit the caller was told failed (phantom commit), and the next
        successful commit would reuse its seq.
        """
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=True)
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
        db.insert("t", {"a": 0, "b": "zero"})
        wal_path = os.path.join(path, "wal.log")
        size_before = os.path.getsize(wal_path)
        seq_before = db.wal.next_seq
        db.wal._io = FaultInjector(fail_fsync=True)
        with pytest.raises(StorageError):
            db.insert("t", {"a": 1, "b": "one"})
        # The un-fsynced group, commit marker included, was rolled back.
        assert os.path.getsize(wal_path) == size_before
        assert db.wal.next_seq == seq_before
        db.wal._io = IOShim()
        db.insert("t", {"a": 2, "b": "two"})
        _hard_close(db)
        db2 = Database(path=path, fsync=False)
        try:
            assert not db2.read_only, f"events={db2._corruption_events}"
            # The failed commit is not replayed; the later one is.
            assert db2.query("SELECT a FROM t ORDER BY a") == [(0,), (2,)]
            assert db2.integrity_check().ok
        finally:
            _hard_close(db2)

    def test_checkpoint_io_failure_degrades_to_read_only(self, tmp_path):
        """A mid-checkpoint I/O error may leave the heaps half-flushed, so
        a *retried* checkpoint would journal contaminated pre-images.  The
        database degrades instead; reopening recovers like after a crash."""
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        db.checkpoint()
        db.insert("t", {"a": 100, "b": "after-ckpt"})
        shim = FaultInjector(fail_fsync=True)
        db._io = shim
        for pager in db._pagers.values():
            pager._io = shim
        db.wal._io = shim
        with pytest.raises(StorageError):
            db.checkpoint()
        assert db.read_only
        assert any(
            e["component"] == "checkpoint" for e in db._corruption_events
        )
        with pytest.raises(ReadOnlyError):
            db.insert("t", {"a": 101, "b": "rejected"})
        _hard_close(db)
        db2 = Database(path=path, fsync=False)
        try:
            assert not db2.read_only, f"events={db2._corruption_events}"
            assert db2.query("SELECT COUNT(*) FROM t") == [(4,)]
            assert db2.integrity_check().ok
        finally:
            _hard_close(db2)

    def test_injected_crash_is_not_a_catchable_wow_error(self):
        from repro.errors import WowError

        assert not issubclass(InjectedCrash, WowError)
        assert not issubclass(InjectedCrash, Exception)

    def test_csv_export_io_is_fault_covered(self, tmp_path):
        """Regression for the WOW001 routing fix: ``export_csv`` to a path
        writes through the database's IOShim, so its I/O is counted — and
        crashable.  Before the fix the export used a raw ``open()`` and the
        crash below could never land inside it."""
        from repro.relational.csvio import export_csv

        path = str(tmp_path / "db")
        shim = FaultInjector()
        db = Database(path=path, fsync=False, io=shim)
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
        db.bulk_insert("t", [{"a": i, "b": f"row{i}"} for i in range(10)])
        before = shim.io_calls
        assert export_csv(db, "t", str(tmp_path / "t.csv")) == 10
        # Only passes with the shim routing in place: a raw open() would
        # leave the counter untouched.
        assert shim.io_calls > before

        # Arm a crash on the export's very first I/O call (the open): the
        # export dies before writing a byte, the engine state is untouched.
        out2 = str(tmp_path / "t2.csv")
        db._io = FaultInjector(crash_at=1)
        with pytest.raises(InjectedCrash):
            export_csv(db, "t", out2)
        assert not os.path.exists(out2)
        db._io = shim
        _hard_close(db)
        db2 = Database(path=path, fsync=False)
        try:
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 10
            assert db2.integrity_check().ok
        finally:
            _hard_close(db2)


class TestDegradedSurfaces:
    def _degraded_db(self, tmp_path):
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        _hard_close(db)
        with open(os.path.join(path, "wal.log"), "r+b") as fh:
            data = fh.read()
            fh.seek(data.index(b'"t"'))
            fh.write(b"X")
        return Database(path=path, fsync=False)

    def test_forms_runtime_shows_banner_instead_of_crashing(self, tmp_path):
        from repro.forms.runtime import FormController, Mode
        from repro.forms.spec import FieldSpec, FormSpec
        from repro.relational.types import ColumnType

        db = self._degraded_db(tmp_path)
        try:
            spec = FormSpec(
                "tform", "t", "T records",
                fields=[
                    FieldSpec("a", "A", ColumnType.INT, 8, 0, in_key=True),
                    FieldSpec("b", "B", ColumnType.TEXT, 20, 1),
                ],
            )
            controller = FormController(db, spec)  # browsing must work
            assert controller.status_line().startswith("[READ-ONLY]")
            controller.begin_edit()
            assert controller.mode is Mode.BROWSE  # refused, not crashed
            assert "READ-ONLY" in controller.message
            controller.begin_insert()
            assert controller.mode is Mode.BROWSE
            assert controller.delete_record() is False
            assert "READ-ONLY" in controller.message
        finally:
            _hard_close(db)

    def test_debug_window_lists_integrity_section(self, tmp_path):
        from repro.core.debug_window import _snapshot_lines

        db = self._degraded_db(tmp_path)
        try:
            lines = _snapshot_lines(db)
            assert "== integrity ==" in lines
            joined = "\n".join(lines)
            assert "read_only" in joined and "corruption_events" in joined
        finally:
            _hard_close(db)

    def test_integrity_report_renders_and_serialises(self, tmp_path):
        db = self._degraded_db(tmp_path)
        try:
            report = db.integrity_check()
            doc = report.to_dict()
            assert doc["ok"] is False and doc["read_only"] is True
            assert doc["findings"]
            text = "\n".join(report.to_lines())
            assert "CORRUPT" in text and "READ-ONLY" in text
            json.dumps(doc)  # must be serialisable
        finally:
            _hard_close(db)

    def test_healthy_database_reports_ok(self, tmp_path):
        path = str(tmp_path / "db")
        db = _setup_disk(path)
        db.execute("CREATE INDEX ix_b ON t (b)")
        try:
            report = db.integrity_check()
            assert report.ok and not report.read_only
            assert report.checked["tables"] >= 1
            assert report.checked["rows"] == 3
            assert report.checked["indexes"] >= 2  # pk + ix_b
        finally:
            db.close()
