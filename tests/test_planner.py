"""Tests for planning decisions: pushdown, index selection, join strategy."""

import pytest

from repro.errors import PlanError
from repro.relational.database import Database
from repro.relational.planner import PlannerConfig


@pytest.fixture
def sized(db):
    db.execute("CREATE TABLE big (id INT PRIMARY KEY, grp INT, val FLOAT)")
    db.execute("CREATE TABLE small (grp INT PRIMARY KEY, label TEXT)")
    db.execute("CREATE INDEX ix_grp ON big (grp)")
    for g in range(10):
        db.insert("small", {"grp": g, "label": f"g{g}"})
    for i in range(300):
        db.insert("big", {"id": i, "grp": i % 10, "val": float(i)})
    return db


def plan_of(db, sql):
    return db.execute("EXPLAIN " + sql).plan


class TestAccessPaths:
    def test_pk_equality_uses_index(self, sized):
        plan = plan_of(sized, "SELECT * FROM big WHERE id = 7")
        assert "IndexEqScan" in plan

    def test_secondary_equality_uses_index(self, sized):
        plan = plan_of(sized, "SELECT * FROM big WHERE grp = 3")
        assert "IndexEqScan" in plan and "ix_grp" in plan

    def test_range_uses_btree(self, sized):
        plan = plan_of(sized, "SELECT * FROM big WHERE id > 100 AND id <= 200")
        assert "IndexRangeScan" in plan

    def test_no_index_means_seqscan_filter(self, sized):
        plan = plan_of(sized, "SELECT * FROM big WHERE val = 5.0")
        assert "SeqScan" in plan and "Filter" in plan

    def test_index_selection_can_be_disabled(self, sized):
        sized.planner_config.enable_index_selection = False
        plan = plan_of(sized, "SELECT * FROM big WHERE id = 7")
        assert "IndexEqScan" not in plan
        sized.planner_config.enable_index_selection = True

    def test_pushdown_can_be_disabled(self, sized):
        sized.planner_config.enable_pushdown = False
        plan = plan_of(sized, "SELECT * FROM big WHERE id = 7")
        assert "IndexEqScan" not in plan and "Filter" in plan
        sized.planner_config.enable_pushdown = True

    def test_residual_predicate_stays(self, sized):
        plan = plan_of(sized, "SELECT * FROM big WHERE grp = 3 AND val > 100")
        assert "IndexEqScan" in plan and "Filter" in plan


class TestJoinPlanning:
    def test_equi_join_uses_hash(self, sized):
        plan = plan_of(
            sized, "SELECT * FROM big b JOIN small s ON b.grp = s.grp"
        )
        assert "HashJoin" in plan

    def test_non_equi_join_uses_nl(self, sized):
        plan = plan_of(
            sized, "SELECT * FROM big b JOIN small s ON b.grp < s.grp"
        )
        assert "NestedLoopJoin" in plan

    def test_forced_nl(self, sized):
        sized.planner_config.join_strategy = "nl"
        plan = plan_of(sized, "SELECT * FROM big b JOIN small s ON b.grp = s.grp")
        assert "NestedLoopJoin" in plan and "HashJoin" not in plan
        sized.planner_config.join_strategy = "auto"

    def test_forced_merge(self, sized):
        sized.planner_config.join_strategy = "merge"
        plan = plan_of(sized, "SELECT * FROM big b JOIN small s ON b.grp = s.grp")
        assert "MergeJoin" in plan
        sized.planner_config.join_strategy = "auto"

    def test_strategies_agree_on_results(self, sized):
        sql = (
            "SELECT b.id, s.label FROM big b JOIN small s ON b.grp = s.grp "
            "WHERE b.id < 50 ORDER BY b.id"
        )
        results = {}
        for strategy in ("auto", "nl", "hash", "merge"):
            sized.planner_config.join_strategy = strategy
            results[strategy] = sized.query(sql)
        sized.planner_config.join_strategy = "auto"
        assert results["auto"] == results["nl"] == results["hash"] == results["merge"]

    def test_left_join_results_same_under_nl_and_hash(self, company):
        sql = (
            "SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id "
            "ORDER BY e.id"
        )
        company.planner_config.join_strategy = "nl"
        nl_rows = company.query(sql)
        company.planner_config.join_strategy = "auto"
        assert company.query(sql) == nl_rows

    def test_join_reorder_puts_filtered_side_first(self, sized):
        # With reorder on, the planner may start from either side but must
        # produce a correct result; sanity-check output equality.
        sql = (
            "SELECT COUNT(*) FROM big b JOIN small s ON b.grp = s.grp "
            "WHERE s.label = 'g3'"
        )
        with_reorder = sized.query(sql)
        sized.planner_config.enable_join_reorder = False
        without = sized.query(sql)
        sized.planner_config.enable_join_reorder = True
        assert with_reorder == without == [(30,)]


class TestPlanShape:
    def test_explain_is_indented_tree(self, sized):
        plan = plan_of(sized, "SELECT id FROM big WHERE grp = 1 ORDER BY id LIMIT 5")
        lines = plan.splitlines()
        assert lines[0].startswith("Limit")
        assert any(line.startswith("  ") for line in lines)

    def test_select_without_from_is_constant_row(self, db):
        assert db.query("SELECT 1, 'x'") == [(1, "x")]

    def test_select_without_from_rejects_columns(self, db):
        from repro.errors import BindError

        with pytest.raises(BindError):
            db.query("SELECT ghost_column")
