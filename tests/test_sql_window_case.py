"""Tests for the SQL monitor window, CASE expressions, and date functions."""

import pytest

from repro.core import WowApp
from repro.errors import ParseError
from repro.windows.geometry import Rect


@pytest.fixture
def app(company):
    return WowApp(company, width=80, height=20)


class TestSqlWindow:
    def test_execute_select(self, app):
        app.open_sql_window(Rect(0, 0, 60, 16))
        app.send_keys("SELECT name FROM dept ORDER BY id<ENTER>")
        app.expect_on_screen("eng")
        app.expect_on_screen("(3 rows)")

    def test_execute_dml_reports_rowcount(self, app, company):
        app.open_sql_window(Rect(0, 0, 60, 16))
        app.send_keys("DELETE FROM emp WHERE id = 13<ENTER>")
        app.expect_on_screen("1 row(s) affected")
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_error_shown_not_raised(self, app):
        app.open_sql_window(Rect(0, 0, 60, 16))
        app.send_keys("SELECT * FROM ghosts<ENTER>")
        app.expect_on_screen("CatalogError")

    def test_history_recall(self, app):
        window = app.open_sql_window(Rect(0, 0, 60, 16))
        app.send_keys("SELECT 1<ENTER>")
        app.send_keys("SELECT 2<ENTER>")
        app.send_keys("<UP>")
        assert window.input.text == "SELECT 2"
        app.send_keys("<UP>")
        assert window.input.text == "SELECT 1"
        app.send_keys("<DOWN><DOWN>")
        assert window.input.text == ""

    def test_scrolling(self, app, company):
        window = app.open_sql_window(Rect(0, 0, 60, 10))
        for _ in range(4):
            app.send_keys("SELECT * FROM emp<ENTER>")
        bottom_scroll = window.output.scroll
        assert bottom_scroll > 0
        app.send_keys("<PGUP>")
        assert window.output.scroll < bottom_scroll
        app.send_keys("<PGDN>")
        assert window.output.scroll == bottom_scroll

    def test_keystrokes_metered(self, app):
        window = app.open_sql_window(Rect(0, 0, 60, 16))
        app.send_keys("SELECT 1<ENTER>")
        assert window.cli.keys.total == len("SELECT 1") + 1

    def test_coexists_with_forms(self, app, company):
        form = app.open_form("emp", x=62, y=0)
        app.open_sql_window(Rect(0, 0, 60, 16))
        app.send_keys("UPDATE emp SET name = 'zzz' WHERE id = 10<ENTER>")
        app.send_keys("<F1>")  # cycle to the form window
        while app.active_window is not form:
            app.send_keys("<F1>")
        app.send_keys("<F5>")
        assert form.controller.field_texts["name"] == "zzz"


class TestCaseExpression:
    def test_searched_case(self, company):
        rows = company.query(
            "SELECT name, CASE WHEN salary >= 100 THEN 'high' "
            "WHEN salary >= 80 THEN 'mid' ELSE 'low' END AS band "
            "FROM emp ORDER BY id"
        )
        assert rows == [
            ("ada", "high"),
            ("bob", "mid"),
            ("cyd", "high"),
            ("dan", "low"),
        ]

    def test_simple_case(self, company):
        rows = company.query(
            "SELECT CASE dept_id WHEN 1 THEN 'eng' WHEN 2 THEN 'sales' "
            "ELSE 'other' END FROM emp ORDER BY id"
        )
        assert rows == [("eng",), ("sales",), ("eng",), ("other",)]

    def test_case_without_else_yields_null(self, company):
        rows = company.query(
            "SELECT CASE WHEN salary > 1000 THEN 'rich' END FROM emp WHERE id = 10"
        )
        assert rows == [(None,)]

    def test_case_null_condition_is_not_true(self, company):
        # dan's dept_id is NULL: NULL = 1 is unknown -> falls to ELSE.
        rows = company.query(
            "SELECT CASE WHEN dept_id = 1 THEN 'one' ELSE 'not-one' END "
            "FROM emp WHERE id = 13"
        )
        assert rows == [("not-one",)]

    def test_case_in_where(self, company):
        rows = company.query(
            "SELECT id FROM emp WHERE CASE WHEN dept_id IS NULL THEN TRUE "
            "ELSE FALSE END"
        )
        assert rows == [(13,)]

    def test_case_requires_when(self, company):
        with pytest.raises(ParseError):
            company.query("SELECT CASE ELSE 1 END FROM emp")

    def test_case_in_aggregate(self, company):
        # Pivot-style counting.
        rows = company.query(
            "SELECT SUM(CASE WHEN dept_id = 1 THEN 1 ELSE 0 END) AS eng_count "
            "FROM emp"
        )
        assert rows == [(2,)]


class TestDateFunctions:
    def test_year_month_day(self, company):
        rows = company.query(
            "SELECT YEAR(hired), MONTH(hired), DAY(hired) FROM emp WHERE id = 10"
        )
        assert rows == [(2020, 1, 2)]

    def test_null_dates(self, company):
        assert company.query("SELECT YEAR(hired) FROM emp WHERE id = 12") == [(None,)]

    def test_group_by_year(self, company):
        rows = company.query(
            "SELECT YEAR(hired) AS y, COUNT(*) AS n FROM emp "
            "WHERE hired IS NOT NULL GROUP BY YEAR(hired) ORDER BY y"
        )
        assert rows == [(2019, 1), (2020, 1), (2021, 1)]
