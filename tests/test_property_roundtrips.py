"""Property-based round-trip tests: expression SQL text and CSV."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import expr as E
from repro.relational.csvio import export_csv_text, import_csv_text
from repro.relational.database import Database
from repro.sql.parser import parse_statement

# -- expression to_sql / reparse ------------------------------------------

literal_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=30),
    st.dates(min_value=datetime.date(1, 1, 1), max_value=datetime.date(9999, 12, 31)),
)


def expr_strategy():
    literals = literal_values.map(E.Literal)
    columns = st.sampled_from(["a", "b"]).map(E.ColumnRef)
    base = st.one_of(literals, columns)

    def extend(children):
        comparison = st.builds(
            E.BinOp, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), children, children
        )
        arith = st.builds(E.BinOp, st.sampled_from(["+", "-", "*"]), children, children)
        logic = st.builds(E.BinOp, st.sampled_from(["and", "or"]), children, children)
        negation = st.builds(E.UnaryOp, st.just("not"), children)
        isnull = st.builds(E.IsNull, children, st.booleans())
        return st.one_of(comparison, arith, logic, negation, isnull)

    return st.recursive(base, extend, max_leaves=10)


class TestExprSqlRoundtrip:
    @given(expr=expr_strategy())
    @settings(max_examples=150, deadline=None)
    def test_to_sql_reparses_to_equal_tree(self, expr):
        """expr -> SQL text -> parser must reproduce an equal tree.

        Parsed trees can differ in BETWEEN-style sugar, so compare via a
        second serialisation: to_sql of the reparse equals the first text.
        """
        text = expr.to_sql()
        statement = parse_statement(f"SELECT 1 FROM t WHERE {text}")
        assert statement.where is not None
        assert statement.where.to_sql() == text

    @given(value=literal_values)
    @settings(max_examples=150, deadline=None)
    def test_literal_roundtrip_value(self, value):
        text = E.Literal(value).to_sql()
        statement = parse_statement(f"SELECT 1 FROM t WHERE a = {text}")
        reparsed = statement.where.right
        if isinstance(value, datetime.date):
            # DATE literals travel as ISO strings; coercion happens at the
            # comparison site, so the reparsed literal is the ISO text.
            assert reparsed.value == value.isoformat()
        elif isinstance(value, float):
            assert reparsed.value == pytest.approx(value)
        else:
            assert reparsed.value == value


# -- CSV round trips ------------------------------------------------------

csv_rows = st.lists(
    st.tuples(
        st.integers(0, 10**6),
        st.text(
            alphabet=st.characters(
                blacklist_categories=("Cs", "Cc"), blacklist_characters='",\r\n'
            ),
            min_size=1,
            max_size=20,
        ),
        st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False, width=16)),
        st.one_of(st.none(), st.booleans()),
        st.one_of(
            st.none(),
            st.dates(
                min_value=datetime.date(1900, 1, 1),
                max_value=datetime.date(2100, 1, 1),
            ),
        ),
    ),
    max_size=25,
    unique_by=lambda row: row[0],
)


class TestCsvRoundtripProperty:
    @given(rows=csv_rows)
    @settings(max_examples=60, deadline=None)
    def test_export_import_identity(self, rows):
        db = Database()
        db.execute(
            "CREATE TABLE r (k INT PRIMARY KEY, s TEXT NOT NULL, f FLOAT, "
            "b BOOL, d DATE)"
        )
        for k, s, f, b, d in rows:
            db.insert("r", {"k": k, "s": s, "f": f, "b": b, "d": d})
        text = export_csv_text(db, "r")
        db.execute("DELETE FROM r")
        assert import_csv_text(db, "r", text) == len(rows)
        restored = db.query("SELECT k, s, f, b, d FROM r ORDER BY k")
        expected = sorted(rows, key=lambda row: row[0])
        for got, want in zip(restored, expected):
            assert got[0] == want[0]
            assert got[1] == want[1]
            if want[2] is None:
                assert got[2] is None
            else:
                assert got[2] == pytest.approx(want[2], rel=1e-5)
            assert got[3] == want[3]
            assert got[4] == want[4]
