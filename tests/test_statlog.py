"""Query-insight subsystem: statement log, telemetry tables, sink, CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import CatalogError, ExecutionError, SqlError
from repro.obs.statlog import (
    JsonlSink,
    StatementLog,
    fingerprint_sql,
    misestimate_factor,
    read_jsonl,
)
from repro.relational.catalog import SYSTEM_TABLE_NAMES, Catalog
from repro.relational.database import Database
from repro.relational.faults import FaultInjector, InjectedCrash


@pytest.fixture
def people(db: Database) -> Database:
    db.execute("CREATE TABLE people (id INT PRIMARY KEY, name TEXT)")
    for i in range(30):
        db.insert("people", {"id": i, "name": f"p{i}"})
    return db


# -- fingerprints ------------------------------------------------------------


class TestFingerprint:
    def test_literals_lift_to_same_fingerprint(self):
        a = fingerprint_sql("SELECT * FROM t WHERE id = 3")
        b = fingerprint_sql("SELECT * FROM t WHERE id = 7777")
        c = fingerprint_sql("SELECT * FROM t WHERE id = ?")
        assert a == b == c

    def test_whitespace_and_case_normalize(self):
        a = fingerprint_sql("select  name from t\n WHERE id = 1")
        b = fingerprint_sql("SELECT name FROM t WHERE id = 2")
        assert a == b

    def test_different_shape_differs(self):
        a = fingerprint_sql("SELECT * FROM t WHERE id = 1")
        b = fingerprint_sql("SELECT * FROM t WHERE name = 'x'")
        assert a != b

    def test_unlexable_text_still_fingerprints(self):
        assert len(fingerprint_sql("SELECT \x00 garbage !!!! ~~")) == 12

    def test_misestimate_factor(self):
        assert misestimate_factor(None, 5) is None
        assert misestimate_factor(10, None) is None
        assert misestimate_factor(10, 10) == 1.0
        assert misestimate_factor(100, 10) == 10.0
        assert misestimate_factor(10, 100) == 10.0
        # both sides floored at one row: no division by zero
        assert misestimate_factor(0, 0) == 1.0
        assert misestimate_factor(50, 0) == 50.0


# -- capture -----------------------------------------------------------------


class TestStatementCapture:
    def test_statements_table_records_session(self, people: Database):
        people.execute("SELECT * FROM people WHERE id = 5")
        rows = people.execute(
            "SELECT kind, sql, cache, act_rows FROM _statements"
        ).mappings()
        assert rows, "_statements must not be empty"
        last = rows[-1]
        # the SELECT over _statements itself is not yet finished, so the
        # last *captured* row is the point select
        assert last["kind"] == "Select"
        assert last["sql"] == "SELECT * FROM people WHERE id = 5"
        assert last["cache"] in ("hit", "miss")
        assert last["act_rows"] == 1
        kinds = {r["kind"] for r in rows}
        # programmatic db.insert() is not a statement; only SQL is captured
        assert kinds == {"CreateTable", "Select"}

    def test_cache_hit_miss_column(self, people: Database):
        people.execute("SELECT name FROM people WHERE id = 9")
        people.execute("SELECT name FROM people WHERE id = 9")
        rows = people.execute(
            "SELECT sql, cache FROM _statements WHERE act_rows = 1"
        ).mappings()
        point = [r for r in rows if r["sql"] == "SELECT name FROM people WHERE id = 9"]
        assert [r["cache"] for r in point] == ["miss", "hit"]

    def test_fingerprint_shared_across_literals(self, people: Database):
        people.execute("SELECT name FROM people WHERE id = 1")
        people.execute("SELECT name FROM people WHERE id = 2")
        rows = people.execute(
            "SELECT sql, fingerprint FROM _statements"
        ).mappings()
        fps = {
            r["fingerprint"]
            for r in rows
            if r["sql"].startswith("SELECT name FROM people")
        }
        assert len(fps) == 1

    def test_errors_are_captured(self, people: Database):
        with pytest.raises(CatalogError):
            people.execute("SELECT * FROM missing")
        rows = people.execute(
            "SELECT sql, error, act_rows FROM _statements"
        ).mappings()
        failed = [r for r in rows if r["error"]]
        assert failed and "CatalogError" in failed[-1]["error"]
        assert failed[-1]["act_rows"] is None

    def test_prepared_statements_capture_params(self, people: Database):
        handle = people.prepare("SELECT name FROM people WHERE id = ?")
        handle.execute([7])
        rows = people.execute(
            "SELECT kind, params, fingerprint FROM _statements"
        ).mappings()
        last = rows[-1]
        assert json.loads(last["params"]) == [7]
        assert last["fingerprint"] == fingerprint_sql(
            "SELECT name FROM people WHERE id = 7"
        )

    def test_stream_capture_finishes_on_drain(self, people: Database):
        _cols, rows = people.stream("SELECT * FROM people")
        assert people.statement_log.current is None  # detached immediately
        consumed = sum(1 for _ in rows)
        assert consumed == 30
        last = people.statement_log.records()[-1]
        assert last.kind == "Select" and last.rows == 30

    def test_capacity_zero_disables_capture(self):
        db = Database(statlog_capacity=0)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        assert not db.statement_log.enabled
        assert db.execute("SELECT * FROM _statements").rowcount == 0

    def test_ring_is_bounded(self, people: Database):
        small = Database(statlog_capacity=4)
        small.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(10):
            small.execute(f"SELECT {i} FROM t")
        assert len(small.statement_log) == 4
        assert small.statement_log.counters["dropped"] == 7
        seqs = [r.seq for r in small.statement_log.records()]
        assert seqs == sorted(seqs)

    def test_union_and_est_rows_noted(self, people: Database):
        people.execute("ANALYZE people")
        people.execute("SELECT name FROM people WHERE id < 10")
        record = people.statement_log.records()[-1]
        assert record.plan_fp is not None
        people.execute(
            "SELECT name FROM people WHERE id = 1 "
            "UNION SELECT name FROM people WHERE id = 2"
        )
        assert people.statement_log.records()[-1].plan_fp is not None

    def test_metrics_snapshot_has_statement_log(self, people: Database):
        snap = people.metrics_snapshot()["statement_log"]
        assert snap["enabled"] == 1
        assert snap["captured"] == len(people.statement_log)


class TestSampling:
    def test_sample_every_captures_operator_rows(self):
        db = Database(statlog_sample_every=2)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(20):
            db.insert("t", {"id": i, "v": i * 2})
        db.execute("ANALYZE t")
        for i in range(6):
            db.execute(f"SELECT v FROM t WHERE id < {10 + i}")
        sampled = [r for r in db.statement_log.records() if r.ops]
        assert sampled, "sampling must capture per-operator rows"
        op = sampled[-1].ops[-1]
        assert set(op) == {"i", "op", "est", "act"}
        assert db.statement_log.counters["sampled"] == len(sampled)
        assert db.statement_log.plan_stats

    def test_sampling_never_instruments_cached_plan(self):
        db = Database(statlog_sample_every=1)  # sample every select
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.insert("t", {"id": 1})
        sql = "SELECT * FROM t WHERE id = 1"
        db.execute(sql)
        db.execute(sql)
        entry = db._lookup_statement(sql)
        # the cached plan slot must stay empty or uninstrumented: its rows
        # method must be the class implementation, not a counting wrapper
        if entry.plan is not None:
            assert "rows" not in vars(entry.plan)

    def test_plan_stats_table(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(10):
            db.insert("t", {"id": i})
        db.execute("ANALYZE t")
        db.execute("EXPLAIN ANALYZE SELECT * FROM t WHERE id < 5")
        rows = db.execute("SELECT * FROM _plan_stats").mappings()
        assert rows
        scan = [r for r in rows if r["est_rows"] is not None]
        assert scan and scan[0]["worst_factor"] >= 1.0
        assert scan[0]["execs"] == 1


# -- EXPLAIN ANALYZE render (regression-pins the est/act format) -------------


class TestAnalyzeRender:
    def test_est_act_format(self, people: Database):
        people.execute("ANALYZE people")
        plan = people.execute(
            "EXPLAIN ANALYZE SELECT * FROM people WHERE id < 10"
        ).plan
        # the scan line must read "[est=~N act=M (xK.K off)" once actuals
        # are captured and an estimate exists
        import re

        match = re.search(r"\[est=~(\d+) act=(\d+) \(x(\d+\.\d) off\)", plan)
        assert match, f"no est/act annotation in:\n{plan}"
        assert int(match.group(2)) == 10
        est, act = float(match.group(1)), float(match.group(2))
        expected = max(max(est, 1) / max(act, 1), max(act, 1) / max(est, 1))
        assert float(match.group(3)) == pytest.approx(expected, abs=0.06)

    def test_operators_without_estimate_keep_rows_format(self, people: Database):
        plan = people.execute("EXPLAIN ANALYZE SELECT * FROM people").plan
        assert "[rows=30 loops=1" in plan


# -- slow-log integration (satellite: fingerprint tag + per-db config) -------


class TestSlowLogJoin:
    def test_slow_ops_carry_statement_fingerprint(self):
        db = Database(slow_ms=0.0)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("SELECT * FROM t WHERE id = 1")
        rows = db.execute(
            "SELECT name, fingerprint FROM _slow_ops"
        ).mappings()
        executes = [r for r in rows if r["name"] == "db.execute"]
        assert executes
        fps = {r["fingerprint"] for r in executes}
        assert fingerprint_sql("SELECT * FROM t WHERE id = 1") in fps

    def test_slow_ops_join_statements(self):
        db = Database(slow_ms=0.0)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("SELECT * FROM t")
        joined = db.execute(
            "SELECT s.sql, o.duration_ms FROM _slow_ops o "
            "JOIN _statements s ON o.fingerprint = s.fingerprint"
        ).rows
        assert any("SELECT * FROM t" in row[0] for row in joined)

    def test_slow_log_threshold_and_capacity_configurable(self):
        db = Database(slow_ms=1234.5, slow_capacity=3)
        assert db.slow_log.threshold_ms == 1234.5
        for i in range(10):
            db.slow_log.record(f"op{i}", 99999.0)
        assert len(db.slow_log) == 3
        assert db.slow_log.dropped == 7


# -- reserved names (satellite: telemetry tables are reserved) ---------------


class TestReservedNames:
    def test_telemetry_names_are_reserved(self):
        assert {"_statements", "_slow_ops", "_metrics", "_plan_stats"} <= set(
            SYSTEM_TABLE_NAMES
        )

    @pytest.mark.parametrize(
        "name", ["_statements", "_slow_ops", "_metrics", "_plan_stats"]
    )
    def test_create_table_rejected(self, db: Database, name: str):
        with pytest.raises(CatalogError, match="reserved"):
            db.execute(f"CREATE TABLE {name} (id INT PRIMARY KEY)")

    def test_create_view_rejected(self, people: Database):
        with pytest.raises(CatalogError, match="reserved"):
            people.execute("CREATE VIEW _statements AS SELECT * FROM people")

    def test_dml_rejected(self, db: Database):
        with pytest.raises((SqlError, ExecutionError, CatalogError)):
            db.execute("DELETE FROM _statements")

    def test_bare_catalog_serves_empty_telemetry(self):
        catalog = Catalog()
        table = catalog.table("_statements")
        assert table.count() == 0
        assert "fingerprint" in table.schema.column_names

    def test_register_rejects_unreserved_and_builtin(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.register_system_source("_nope", lambda: None)
        with pytest.raises(CatalogError):
            catalog.register_system_source("_tables", lambda: None)


# -- metrics table & exporter ------------------------------------------------


class TestMetricsSurface:
    def test_metrics_table_flattens_snapshot(self, people: Database):
        rows = people.execute(
            "SELECT source, name, value FROM _metrics WHERE source = 'statements'"
        ).mappings()
        by_name = {r["name"]: r["value"] for r in rows}
        assert by_name["inserts"] >= 30.0

    def test_metrics_table_includes_registry(self):
        from repro.obs import Registry

        db = Database(obs=Registry(enabled=True))
        db.obs.add("test.counter", 5)
        db.obs.observe("test.hist", 1.5)
        rows = db.execute(
            "SELECT name, kind, value, samples FROM _metrics WHERE source = 'registry'"
        ).mappings()
        kinds = {r["name"]: r for r in rows}
        assert kinds["test.counter"]["value"] == 5.0
        assert kinds["test.hist"]["kind"] == "histogram"
        assert kinds["test.hist"]["samples"] == 1

    def test_prometheus_export(self):
        from repro.obs import Registry

        registry = Registry(enabled=True)
        registry.add("pager.page_reads", 3)
        registry.gauge("pool.size").set(7)
        registry.observe("span.db.execute", 2.0)
        text = registry.to_prometheus()
        assert "# TYPE wow_pager_page_reads counter" in text
        assert "wow_pager_page_reads 3.0" in text
        assert "# TYPE wow_pool_size gauge" in text
        assert 'wow_span_db_execute{quantile="0.95"} 2.0' in text
        assert "wow_span_db_execute_count 1.0" in text

    def test_json_export_round_trips(self):
        from repro.obs import Registry
        from repro.obs.exporter import json_text

        registry = Registry(enabled=True)
        registry.add("a.b", 1)
        doc = json.loads(json_text(registry.snapshot()))
        assert doc["counters"]["a.b"] == 1


# -- JSONL sink (satellite: rotation, valid JSON, crash replay) --------------


class TestJsonlSink:
    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        db = Database(statlog_path=path)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.close()
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        assert len(lines) == 6
        for line in lines:
            doc = json.loads(line)
            assert {"seq", "sql", "fingerprint", "duration_ms"} <= set(doc)

    def test_rotation_at_size_cap(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        sink = JsonlSink(path, max_bytes=400)
        for i in range(40):
            sink.write({"seq": i, "payload": "x" * 40})
        sink.close()
        assert sink.rotations > 0
        assert os.path.exists(path) and os.path.exists(path + ".1")
        # on-disk footprint stays bounded by ~2x the cap
        total = os.path.getsize(path) + os.path.getsize(path + ".1")
        assert total <= 2 * 400 + 200
        records, skipped = read_jsonl(path)
        assert skipped == 0
        # the live file holds the newest records
        assert records[-1]["seq"] == 39

    def test_torn_line_replay(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        sink = JsonlSink(path)
        sink.write({"seq": 1, "sql": "SELECT 1"})
        sink.write({"seq": 2, "sql": "SELECT 2"})
        sink.close()
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 3, "sql": "SELECT 3\xff')  # torn mid-append
        records, skipped = read_jsonl(path)
        assert [r["seq"] for r in records] == [1, 2]
        assert skipped == 1

    def test_crash_exhaustion_leaves_replayable_log(self, tmp_path):
        """Crash at every sink write point: the log must replay cleanly."""
        path = str(tmp_path / "s.jsonl")

        def run(io):
            sink = JsonlSink(path, max_bytes=300, io=io)
            log = StatementLog(capacity=8, sink=sink)
            for i in range(12):
                record = log.begin(0, 0, 0)
                log.describe(record, f"SELECT {i}", fingerprint_sql(f"SELECT {i}"), "Select")
                log.finish(record, 1, 0, 0, 0)
            sink.close()

        counting = FaultInjector()
        run(counting)
        writes = len(counting.calls)
        assert writes >= 12
        for crash_at in range(1, writes + 1):
            for name in (path, path + ".1"):
                if os.path.exists(name):
                    os.remove(name)
            shim = FaultInjector(crash_at=crash_at)
            try:
                run(shim)
            except InjectedCrash:
                pass
            if os.path.exists(path):
                _records, skipped = read_jsonl(path)
                assert skipped <= 1  # at most the torn trailing line

    def test_default_sink_collects_all_databases(self, tmp_path):
        from repro.obs.statlog import get_default_sink, set_default_sink

        path = str(tmp_path / "all.jsonl")
        previous = get_default_sink()
        set_default_sink(path)
        try:
            db = Database()
            db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        finally:
            set_default_sink(previous.path if previous else None)
        records, skipped = read_jsonl(path)
        assert skipped == 0
        assert any("CREATE TABLE t" in r["sql"] for r in records)


# -- F12 query inspector & F11 section ---------------------------------------


class TestQueryInspector:
    def _app(self):
        from repro.core.app import WowApp

        db = Database()
        db.execute("CREATE TABLE people (id INT PRIMARY KEY, name TEXT)")
        db.execute("INSERT INTO people VALUES (1, 'ada')")
        db.execute("SELECT * FROM people")
        return WowApp(db, 100, 30)

    def test_f12_toggles_inspector_window(self):
        app = self._app()
        app.send_keys("<F12>")
        app.expect_on_screen("Query Inspector")
        app.expect_on_screen("seq")
        app.send_keys("<F12>")
        assert app._inspector_window is None

    def test_inspector_shows_executed_statements(self):
        app = self._app()
        app.send_keys("<F12>")
        app.expect_on_screen("INSERT INTO p")  # sql column, truncated to width

    def test_f12_listed_in_help(self):
        app = self._app()
        app.send_keys("<F9>")
        app.expect_on_screen("F12 query inspector")

    def test_metrics_window_has_statement_log_section(self):
        from repro.core.debug_window import _snapshot_lines

        db = Database()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        lines = _snapshot_lines(db)
        assert "== statement log ==" in lines
        joined = "\n".join(lines)
        assert "captured" in joined


# -- analyzer CLI ------------------------------------------------------------


class TestAnalyzerCli:
    def _write_log(self, tmp_path) -> str:
        path = str(tmp_path / "s.jsonl")
        db = Database(statlog_path=path, statlog_sample_every=1)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(20):
            db.insert("t", {"id": i})
        db.execute("ANALYZE t")
        db.execute("SELECT * FROM t WHERE id < 3")
        db.execute("SELECT * FROM t WHERE id < 15")
        db.close()
        return path

    def test_top_slow(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = self._write_log(tmp_path)
        assert main(["--log", path, "--top-slow", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["top_slow"]) == 2
        durations = [r["duration_ms"] for r in doc["top_slow"]]
        assert durations == sorted(durations, reverse=True)

    def test_misestimates_ordered_worst_first(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = self._write_log(tmp_path)
        assert main(["--log", path, "--misestimates", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        factors = [m["worst_factor"] for m in doc["misestimates"]]
        assert factors and factors == sorted(factors, reverse=True)
        assert all(f >= 1.0 for f in factors)

    def test_summary_text_output(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = self._write_log(tmp_path)
        assert main(["--log", path, "--summary"]) == 0
        out = capsys.readouterr().out
        assert "== summary ==" in out and "statements" in out

    def test_missing_log_exits_2(self, tmp_path):
        from repro.obs.__main__ import main

        assert main(["--log", str(tmp_path / "absent.jsonl")]) == 2
