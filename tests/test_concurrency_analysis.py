"""Tests for the concurrency correctness analyzer (PR 10).

Three layers under test:

* the static pass — call-graph construction, may/must-held propagation,
  the WOW009/WOW010 checkers — driven with synthetic modules shaped like
  the real engine plus the real tree itself (which must be clean);
* the dynamic lockset detector — latch discipline, per-statement lockset
  ordering, observed-order inversions with both stacks in the report;
* the CLI/pipeline wiring — ``--concurrency`` output, wowlint formats,
  ``--strict`` baseline hygiene, ``metrics_snapshot()["analysis"]``.
"""

import json
import threading

import pytest

from repro.analysis.concurrency import (
    analyze_package,
    analyze_sources,
    build_graph,
    dynlock,
)
from repro.analysis.concurrency.report import PACKAGE_ROOT
from repro.analysis.linter import LintReport, lint_paths, main
from repro.analysis.rules import Violation
from repro.errors import LockDisciplineError
from repro.relational.database import Database
from repro.session.manager import SessionManager


# ---------------------------------------------------------------------------
# Synthetic-module fixtures: engine-shaped code with known defects
# ---------------------------------------------------------------------------

#: a Database/LockManager pair where execute() blocks on the lock-table
#: condition while holding the engine latch — the PR 8 invariant broken
LATCH_WAIT_SRC = '''
import threading

class LockManager:
    def __init__(self):
        self._cond = threading.Condition()
    def acquire(self, session_id, resource, mode):
        with self._cond:
            self._cond.wait(1.0)

class Database:
    def __init__(self):
        self._latch = threading.RLock()
        self.locks = LockManager()
    def execute(self, sql):
        with self._latch:
            self.locks.acquire(1, "t", "X")
'''

#: same shape, but the wait happens outside the latch (the real design)
LATCH_CLEAN_SRC = '''
import threading

class LockManager:
    def __init__(self):
        self._cond = threading.Condition()
    def acquire(self, session_id, resource, mode):
        with self._cond:
            self._cond.wait(1.0)

class Database:
    def __init__(self):
        self._latch = threading.RLock()
        self.locks = LockManager()
    def execute(self, sql):
        self.locks.acquire(1, "t", "X")
        with self._latch:
            return sql
'''


def _conc_violations(sources, code=None):
    report = analyze_sources(sources)
    if code is None:
        return report.violations
    return [v for v in report.violations if v.code == code]


class TestStaticLatchDiscipline:
    def test_latch_held_while_waiting_fails_wow009(self):
        violations = _conc_violations(
            {"src/repro/session/locks.py": LATCH_WAIT_SRC}, "WOW009")
        assert violations, "latch-held-while-waiting must fire WOW009"
        messages = " ".join(v.message for v in violations)
        assert "engine latch" in messages
        # the witness chain names the caller that held the latch
        assert any("Database.execute" in v.message for v in violations)

    def test_wait_outside_latch_is_clean(self):
        assert _conc_violations(
            {"src/repro/session/locks.py": LATCH_CLEAN_SRC}) == []

    def test_interprocedural_latch_reaches_through_helpers(self):
        # latch -> helper -> helper -> wait: only propagation can see it
        src = LATCH_WAIT_SRC.replace(
            '''    def execute(self, sql):
        with self._latch:
            self.locks.acquire(1, "t", "X")''',
            '''    def execute(self, sql):
        with self._latch:
            self._step_one()
    def _step_one(self):
        self._step_two()
    def _step_two(self):
        self.locks.acquire(1, "t", "X")''')
        violations = _conc_violations(
            {"src/repro/session/locks.py": src}, "WOW009")
        assert violations, "held set must propagate through helper calls"

    def test_allow_comment_suppresses(self):
        src = LATCH_WAIT_SRC.replace(
            "            self._cond.wait(1.0)",
            "            # wowlint: allow WOW009\n"
            "            self._cond.wait(1.0)")
        src = src.replace(
            '            self.locks.acquire(1, "t", "X")',
            '            # wowlint: allow WOW009\n'
            '            self.locks.acquire(1, "t", "X")')
        from repro.analysis.linter import concurrency_violations

        remaining = concurrency_violations(
            {"src/repro/session/locks.py": src}, skip_allowed=True)
        assert [v for v in remaining if v.code == "WOW009"] == []


class TestStaticOrderGraph:
    def test_lock_order_cycle_detected(self):
        # cross-file: StatementLog.record holds its lock and calls
        # Registry.bump (statement_log -> metrics_registry); Registry.export
        # holds its lock and calls statlog.record (metrics_registry ->
        # statement_log) — a cycle only entry-held propagation can see
        statlog_src = '''
import threading

class StatementLog:
    def __init__(self):
        self._lock = threading.Lock()
    def record(self, registry: "Registry"):
        with self._lock:
            registry.bump()
'''
        registry_src = '''
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
    def bump(self):
        with self._lock:
            pass
    def export(self, statlog: "StatementLog"):
        with self._lock:
            statlog.record(self)
'''
        report = analyze_sources({
            "src/repro/obs/statlog.py": statlog_src,
            "src/repro/obs/registry.py": registry_src,
        })
        assert report.cycles, "mutual lock nesting must produce a cycle"
        flat = {lock for cycle in report.cycles for lock in cycle}
        assert {"statement_log", "metrics_registry"} <= flat
        assert any("lock-order cycle" in v.message for v in report.violations)

    def test_catalog_after_table_flagged(self):
        src = '''
import threading

CATALOG_RESOURCE = "__catalog__"

class LockManager:
    def __init__(self):
        self._cond = threading.Condition()
    def acquire(self, session_id, resource, mode):
        with self._cond:
            pass

class Manager:
    def __init__(self):
        self.locks = LockManager()
    def bad_path(self):
        self.locks.acquire(1, "accounts", "X")
        self.locks.acquire(1, CATALOG_RESOURCE, "S")
'''
        violations = _conc_violations(
            {"src/repro/session/locks.py": src}, "WOW009")
        assert any("CATALOG_RESOURCE acquired after" in v.message
                   for v in violations)

    def test_real_tree_lock_order_is_cycle_free(self):
        report = analyze_package(PACKAGE_ROOT)
        assert report.cycles == [], (
            "the engine's static lock order grew a cycle: "
            f"{report.cycles}")
        assert report.violations == [], (
            "the engine tree must be WOW009/WOW010-clean: "
            + "; ".join(v.render() for v in report.violations))
        # the PR 8 wiring shows up as latch-outermost edges
        firsts = {e.first for e in report.order_edges}
        assert "engine_latch" in firsts
        # and the latch-over-lock_table edge is release_all (which never
        # waits), not acquire
        latch_edges = [e for e in report.order_edges
                       if e.first == "engine_latch" and e.then == "lock_table"]
        assert all("release_all" in e.scope for e in latch_edges)

    def test_dispatch_edges_reach_system_table_builders(self):
        # Catalog.table -> build_sessions -> SessionManager.session_rows
        # runs under the latch; only the declared dispatch edge makes the
        # engine_latch -> session_registry ordering visible
        report = analyze_package(PACKAGE_ROOT)
        pairs = {(e.first, e.then) for e in report.order_edges}
        assert ("engine_latch", "session_registry") in pairs


class TestSharedStateRule:
    def test_mixed_guarded_unguarded_mutation_fires_wow010(self):
        src = '''
import threading

METRICS = {"hits": 0}

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
    def record_hit(self):
        with self._lock:
            METRICS["hits"] += 1
    def record_unsafe(self):
        METRICS["hits"] += 1
'''
        violations = _conc_violations(
            {"src/repro/relational/plancache.py": src}, "WOW010")
        assert len(violations) == 1
        assert violations[0].scope == "Cache.record_unsafe"
        assert "METRICS" in violations[0].message

    def test_interprocedural_guard_counts(self):
        # the unguarded-looking helper is only ever called under the lock:
        # must-held propagation proves it safe, so WOW010 stays silent
        src = '''
import threading

METRICS = {"hits": 0}

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
    def record_hit(self):
        with self._lock:
            self._bump()
    def record_other(self):
        with self._lock:
            self._bump()
    def _bump(self):
        METRICS["hits"] += 1
'''
        assert _conc_violations(
            {"src/repro/relational/plancache.py": src}, "WOW010") == []

    def test_never_guarded_name_left_to_wow007(self):
        src = '''
METRICS = {"hits": 0}

def bump():
    METRICS["hits"] += 1
'''
        assert _conc_violations(
            {"src/repro/relational/plancache.py": src}, "WOW010") == []


class TestCallGraph:
    def test_self_method_resolution(self):
        cg = build_graph({"src/repro/session/x.py": '''
class A:
    def top(self):
        self.helper()
    def helper(self):
        pass
'''})
        node = cg.nodes[("src/repro/session/x.py", "A.top")]
        calls = [s for s in node.sites if s.kind == "call"]
        assert calls and calls[0].targets == (
            ("src/repro/session/x.py", "A.helper"),)

    def test_attr_type_chain_resolution(self):
        cg = build_graph({"src/repro/session/x.py": '''
class Inner:
    def work(self):
        pass

class Outer:
    def __init__(self):
        self.inner = Inner()
    def run(self):
        self.inner.work()
'''})
        node = cg.nodes[("src/repro/session/x.py", "Outer.run")]
        calls = [s for s in node.sites if s.kind == "call"]
        assert calls[0].targets == (("src/repro/session/x.py", "Inner.work"),)

    def test_unresolvable_calls_are_dropped_not_wildcarded(self):
        cg = build_graph({"src/repro/session/x.py": '''
class A:
    def top(self, mystery):
        mystery.do_something()
'''})
        node = cg.nodes[("src/repro/session/x.py", "A.top")]
        assert [s for s in node.sites if s.kind == "call"] == []

    def test_unmodeled_lock_is_reported(self):
        report = analyze_sources({"src/repro/session/x.py": '''
import threading

class A:
    def __init__(self):
        self._private_lock = threading.Lock()
    def go(self):
        with self._private_lock:
            pass
'''})
        assert any(name == "self._private_lock"
                   for _, _, name in report.unmodeled)


# ---------------------------------------------------------------------------
# Dynamic lockset detector
# ---------------------------------------------------------------------------


@pytest.fixture
def lock_check():
    dynlock.reset()
    dynlock.set_lock_check(True)
    try:
        yield
    finally:
        dynlock.set_lock_check(False)
        dynlock.reset()


class TestDynamicDetector:
    def test_disabled_by_default_returns_bare_objects(self):
        assert not dynlock.enabled()
        latch = threading.RLock()
        assert dynlock.maybe_wrap_latch(latch) is latch

    def test_clean_session_traffic_produces_no_violations(self, lock_check):
        db = Database()
        manager = SessionManager(db)
        with manager.connect() as session:
            session.execute("CREATE TABLE t (id INT, v TEXT)")
            session.execute("INSERT INTO t VALUES (1, 'a')")
            session.execute("SELECT * FROM t")
        snap = dynlock.snapshot()
        assert snap["enabled"]
        assert snap["violations"] == []
        assert snap["lockset_runs"] >= 3
        assert snap["acquisitions"] > 0

    def test_inverted_two_lock_acquisition_caught_with_both_stacks(
            self, lock_check):
        a = dynlock.CheckedLock("lock_a")
        b = dynlock.CheckedLock("lock_b")
        with a:
            with b:
                pass
        with pytest.raises(LockDisciplineError, match="order graph"):
            with b:
                with a:
                    pass
        violations = dynlock.snapshot()["violations"]
        assert len(violations) == 1
        report = violations[0]
        assert report["kind"] == "order_graph_inversion"
        assert report["cycle"][0] == report["cycle"][-1] or (
            "lock_a" in report["cycle"] and "lock_b" in report["cycle"])
        # both stacks present and non-empty
        assert len(report["stacks"]) >= 2
        assert all(stack for stack in report["stacks"].values())
        # locks remain usable after the backed-out acquisition
        with a:
            pass
        with b:
            pass

    def test_table_lock_under_latch_caught(self, lock_check):
        db = Database()
        manager = SessionManager(db)
        session = manager.connect()
        try:
            with db._latch:
                with pytest.raises(LockDisciplineError, match="engine latch"):
                    manager.locks.acquire(session.id, "t", "X", 0.1)
            report = dynlock.snapshot()["violations"][0]
            assert report["kind"] == "latch_held_during_lock_wait"
            assert "engine_latch" in report["stacks"]
        finally:
            dynlock.state().violations.clear()
            session.close()

    def test_lockset_order_inversion_caught(self, lock_check):
        db = Database()
        manager = SessionManager(db)
        session = manager.connect()
        try:
            manager.locks.begin_lockset(session.id)
            manager.locks.acquire(session.id, "zebra", "S", 0.1)
            with pytest.raises(LockDisciplineError, match="catalog-first"):
                manager.locks.acquire(
                    session.id, "__catalog__", "S", 0.1)
            report = dynlock.snapshot()["violations"][0]
            assert report["kind"] == "lockset_order_inversion"
            assert set(report["stacks"]) == {"zebra", "__catalog__"}
        finally:
            dynlock.state().violations.clear()
            manager.locks.release_all(session.id)
            session.close()

    def test_begin_lockset_resets_ordering(self, lock_check):
        db = Database()
        manager = SessionManager(db)
        session = manager.connect()
        try:
            manager.locks.begin_lockset(session.id)
            manager.locks.acquire(session.id, "b_table", "S", 0.1)
            # new statement: going "backwards" to a_table is legal
            manager.locks.begin_lockset(session.id)
            manager.locks.acquire(session.id, "a_table", "S", 0.1)
            assert dynlock.snapshot()["violations"] == []
        finally:
            manager.locks.release_all(session.id)
            session.close()

    def test_violation_report_written_to_telemetry_dir(
            self, lock_check, tmp_path, monkeypatch):
        monkeypatch.setenv("WOW_TELEMETRY_DIR", str(tmp_path))
        a = dynlock.CheckedLock("lock_a")
        b = dynlock.CheckedLock("lock_b")
        with a:
            with b:
                pass
        with pytest.raises(LockDisciplineError):
            with b:
                with a:
                    pass
        dump = tmp_path / "lock_violations.jsonl"
        assert dump.exists()
        payload = json.loads(dump.read_text().splitlines()[0])
        assert payload["kind"] == "order_graph_inversion"


# ---------------------------------------------------------------------------
# Catalog-first lockset ordering (the `__a` regression)
# ---------------------------------------------------------------------------


class TestLocksetOrdering:
    def test_catalog_sorts_before_dunder_table(self):
        # "__a" < "__catalog__" lexicographically, so a plain sorted()
        # would put the user table before the catalog pseudo-lock; the
        # explicit sort key must keep the catalog strictly first
        db = Database()
        manager = SessionManager(db)
        lockset, _ = manager._lockset("SELECT * FROM __a")
        resources = [resource for resource, _ in lockset]
        assert resources[0] == "__catalog__"
        assert "__a" in resources

    def test_tables_sorted_after_catalog(self):
        db = Database()
        manager = SessionManager(db)
        lockset, _ = manager._lockset(
            "SELECT * FROM t_b JOIN t_a ON t_b.id = t_a.id")
        resources = [resource for resource, _ in lockset]
        assert resources[0] == "__catalog__"
        assert resources[1:] == sorted(resources[1:])
        assert {"t_a", "t_b"} <= set(resources)


# ---------------------------------------------------------------------------
# CLI & pipeline wiring
# ---------------------------------------------------------------------------


class TestCli:
    def test_concurrency_cli_human(self, capsys):
        exit_code = main(["--concurrency"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "discovered lock order" in out
        assert "cycle-free" in out
        assert "engine_latch" in out

    def test_concurrency_cli_json(self, capsys):
        exit_code = main(["--concurrency", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["cycles"] == []
        assert payload["violations"] == []
        assert "engine_latch" in payload["lock_order"]
        assert payload["checked_invariants"]
        assert "lock_check" in payload

    def test_metrics_snapshot_analysis_section(self):
        db = Database()
        snap = db.metrics_snapshot()
        assert "analysis" in snap
        analysis = snap["analysis"]
        assert analysis["static"]["cycles"] == 0
        assert analysis["static"]["violations"] == 0
        assert "engine_latch" in analysis["static"]["lock_order"]
        assert analysis["lock_check"]["enabled"] is False

    def test_format_json(self, capsys):
        exit_code = main(["--check", "src/repro/analysis", "--format=json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["ok"] is True
        assert payload["files_checked"] > 0

    def test_format_github_annotations(self):
        report = LintReport()
        report.violations.append(Violation(
            code="WOW009", path="src/repro/session/locks.py", line=12,
            col=4, scope="LockManager.acquire",
            message="bad % and\nnewline", fixit="do better"))
        report.files_checked = 1
        rendered = report.render_github()
        assert "::error file=src/repro/session/locks.py,line=12,col=5," in rendered
        assert "title=WOW009::" in rendered
        # workflow-command escaping
        assert "%25" in rendered and "%0A" in rendered

    def test_strict_fails_on_stale_entries(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "relational"
        src_dir.mkdir(parents=True)
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (src_dir / "clean.py").write_text("x = 1\n")
        baseline = tmp_path / "wowlint.baseline"
        baseline.write_text(
            "WOW001 src/repro/relational/clean.py <module>\n")
        report = lint_paths([str(tmp_path / "src")],
                            baseline_path=str(baseline))
        assert report.ok  # non-strict: stale is a note
        assert report.stale
        exit_code = main(["--check", str(tmp_path / "src"),
                          "--baseline", str(baseline), "--strict"])
        assert exit_code == 1

    def test_strict_passes_on_clean_baseline(self):
        exit_code = main(["--check", "src", "tests", "--strict"])
        assert exit_code == 0
