"""wowlint unit tests: each rule fires on a seeded violation and stays
quiet on the compliant form, plus baseline/suppression/CLI behaviour."""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis.linter import LintReport, lint_paths, lint_source, main
from repro.analysis.rules import check_batched_registry, native_batched_operators

ENGINE_PATH = "src/repro/relational/fake.py"
APP_PATH = "src/repro/forms/fake.py"
TEST_PATH = "tests/fake_test.py"


def codes(source: str, relpath: str = ENGINE_PATH):
    return [v.code for v in lint_source(textwrap.dedent(source), relpath)]


class TestWow001RawIO:
    def test_raw_os_calls_fire(self):
        src = """
            import os
            def flush(fd, data):
                os.write(fd, data)
                os.fsync(fd)
        """
        assert codes(src) == ["WOW001", "WOW001"]

    def test_writable_open_fires(self):
        assert codes("fh = open(p, 'w')\n") == ["WOW001"]
        assert codes("fh = open(p, mode='ab')\n") == ["WOW001"]

    def test_dynamic_mode_fires(self):
        # Mode unknown statically: must be treated as potentially writable.
        assert codes("fh = open(p, m)\n") == ["WOW001"]

    def test_read_open_and_shim_calls_clean(self):
        src = """
            def ok(self, p):
                with open(p, 'r') as fh:
                    fh.read()
                fd = self._io.open(p, 0)
                self._io.write_all(fd, b'x')
        """
        assert codes(src) == []

    def test_only_relational_paths_in_scope(self):
        assert codes("os.write(1, b'x')\n", APP_PATH) == []
        assert codes("os.write(1, b'x')\n", "src/repro/relational/faults.py") == []


class TestWow002BroadExcept:
    def test_bare_except_fires(self):
        src = """
            try:
                work()
            except:
                pass
        """
        assert "WOW002" in codes(src, APP_PATH)

    def test_broad_except_without_reraise_fires(self):
        for catcher in ("Exception", "BaseException", "(ValueError, Exception)"):
            src = f"""
                try:
                    work()
                except {catcher} as exc:
                    log(exc)
            """
            assert "WOW002" in codes(src, APP_PATH), catcher

    def test_bare_raise_is_compliant(self):
        src = """
            try:
                work()
            except Exception:
                undo()
                raise
        """
        assert codes(src, APP_PATH) == []

    def test_raise_new_exception_still_fires(self):
        # `raise Wrapped(...) from exc` swallows a crash signal caught by
        # a broad handler — only a bare `raise` re-raises it.
        src = """
            try:
                work()
            except Exception as exc:
                raise RuntimeError("wrapped") from exc
        """
        assert "WOW002" in codes(src, APP_PATH)

    def test_narrow_handler_clean(self):
        src = """
            try:
                work()
            except ValueError:
                pass
        """
        assert codes(src, APP_PATH) == []


class TestWow003Truthiness:
    def test_eval_in_if_fires(self):
        src = """
            def keep(pred, row):
                if pred.eval(row):
                    return row
        """
        assert "WOW003" in codes(src)

    def test_eval_in_not_and_boolop_fires(self):
        src = """
            def f(pred, other, row):
                return not pred.eval(row) or other.eval(row)
        """
        assert codes(src).count("WOW003") == 2

    def test_is_true_comparison_clean(self):
        src = """
            def keep(pred, row):
                if pred.eval(row) is True:
                    return row
        """
        assert codes(src) == []


class TestWow004Nondeterminism:
    def test_wall_clock_and_random_fire(self):
        src = """
            import random
            def stamp():
                return time.time(), random.random()
        """
        report = codes(src)
        assert report.count("WOW004") == 3  # import + two calls

    def test_perf_counter_clean(self):
        assert codes("start = time.perf_counter()\n") == []

    def test_out_of_scope_clean(self):
        assert codes("import random\n", APP_PATH) == []


class TestWow005UnpairedSpan:
    def test_span_outside_with_fires(self):
        src = """
            def work(tracer):
                span = tracer.span('work')
                span.tag('x', 1)
        """
        assert "WOW005" in codes(src, APP_PATH)

    def test_span_as_context_manager_clean(self):
        src = """
            def work(tracer):
                with tracer.span('work') as span:
                    span.tag('x', 1)
        """
        assert codes(src, APP_PATH) == []


class TestWow007SharedState:
    SESSION_PATH = "src/repro/session/fake.py"

    def test_unlocked_write_fires(self):
        src = """
            REGISTRY = {}
            def register(name, obj):
                REGISTRY[name] = obj
        """
        assert codes(src, self.SESSION_PATH) == ["WOW007"]

    def test_mutator_method_and_augassign_fire(self):
        src = """
            COUNTERS = {"hits": 0}
            QUEUE = []
            def touch(item):
                COUNTERS["hits"] += 1
                QUEUE.append(item)
        """
        assert codes(src, self.SESSION_PATH) == ["WOW007", "WOW007"]

    def test_imported_all_caps_dict_fires(self):
        src = """
            from repro.relational.algebra import EXEC_METRICS
            def charge(n):
                EXEC_METRICS["rows"] += n
        """
        assert codes(src, self.SESSION_PATH) == ["WOW007"]

    def test_lock_guarded_write_clean(self):
        src = """
            import threading
            REGISTRY = {}
            _LOCK = threading.Lock()
            def register(self, name, obj):
                with _LOCK:
                    REGISTRY[name] = obj
                with self._latch:
                    del REGISTRY[name]
                with self._cond:
                    REGISTRY.pop(name, None)
        """
        assert codes(src, self.SESSION_PATH) == []

    def test_module_scope_init_clean(self):
        src = """
            REGISTRY = {}
            REGISTRY["builtin"] = object()
        """
        assert codes(src, self.SESSION_PATH) == []

    def test_instance_state_and_locals_clean(self):
        src = """
            def build():
                local = {}
                local["k"] = 1
                return local
            class Manager:
                def note(self, k):
                    self.stats[k] = 1
        """
        assert codes(src, self.SESSION_PATH) == []

    def test_out_of_scope_clean(self):
        src = """
            REGISTRY = {}
            def register(name, obj):
                REGISTRY[name] = obj
        """
        assert codes(src, APP_PATH) == []


class TestWow006Registry:
    ALGEBRA = textwrap.dedent(
        """
        class Operator:
            def rows_batched(self, n=1):
                pass
        class SeqScan(Operator):
            def rows_batched(self, n=1):
                pass
        class NestedLoopJoin(Operator):
            pass
        """
    )

    def test_native_batched_detection(self):
        assert [n for n, _ in native_batched_operators(self.ALGEBRA)] == ["SeqScan"]

    def test_missing_registry_entry_fires(self):
        registry = "BATCHED_OPERATOR_REGISTRY = {}\n"
        found = check_batched_registry("a.py", self.ALGEBRA, "t.py", registry)
        assert [v.code for v in found] == ["WOW006"]
        assert found[0].scope == "SeqScan"

    def test_registered_operator_clean(self):
        registry = "BATCHED_OPERATOR_REGISTRY = {'SeqScan': 'SELECT 1'}\n"
        assert check_batched_registry("a.py", self.ALGEBRA, "t.py", registry) == []

    def test_absent_registry_reported_once(self):
        found = check_batched_registry("a.py", self.ALGEBRA, "t.py", None)
        assert [v.code for v in found] == ["WOW006"]


class TestWow008PrefetchHint:
    ALGEBRA_PATH = "src/repro/relational/algebra.py"

    def test_scan_without_hint_fires(self):
        src = """
            class Operator:
                prefetch_hint = "none"
            class SeqScan(Operator):
                def rows_batched(self, n=1):
                    pass
        """
        assert codes(src, self.ALGEBRA_PATH) == ["WOW008"]

    def test_unknown_hint_fires(self):
        src = """
            class BitmapScan:
                prefetch_hint = "bitmap"
        """
        assert codes(src, self.ALGEBRA_PATH) == ["WOW008"]

    def test_non_constant_hint_fires(self):
        src = """
            class DynScan:
                prefetch_hint = HINT
        """
        assert codes(src, self.ALGEBRA_PATH) == ["WOW008"]

    def test_declared_hints_clean(self):
        src = """
            class SeqScan:
                prefetch_hint = "sequential"
            class IndexEqScan:
                prefetch_hint = "point"
            class IndexRangeScan:
                prefetch_hint = "range"
            class NestedLoopJoin:
                pass
        """
        assert codes(src, self.ALGEBRA_PATH) == []

    def test_only_algebra_module_in_scope(self):
        src = "class LoneScan:\n    pass\n"
        assert codes(src, ENGINE_PATH) == []
        assert codes(src, "src/repro/relational/algebra.py") == ["WOW008"]

    def test_real_algebra_module_is_clean(self):
        with open("src/repro/relational/algebra.py") as fh:
            source = fh.read()
        found = [
            v.code
            for v in lint_source(source, "src/repro/relational/algebra.py")
            if v.code == "WOW008"
        ]
        assert found == []


class TestWow001ReadCoverage:
    def test_raw_reads_fire(self):
        src = """
            import os
            def fetch(fd, n, off):
                os.lseek(fd, off, os.SEEK_SET)
                data = os.read(fd, n)
                data2 = os.pread(fd, n, off)
                size = os.fstat(fd).st_size
        """
        # lseek is positioning, not I/O the shim must count; the reads and
        # the size probe each need shim routing.
        assert codes(src) == ["WOW001", "WOW001", "WOW001"]

    def test_shimmed_reads_clean(self):
        src = """
            def fetch(self, n, off):
                data = self._io.pread(self._fd, n, off)
                size = self._io.fstat(self._fd).st_size
        """
        assert codes(src) == []


class TestSuppressionAndBaseline:
    def test_inline_allow_on_line(self):
        src = "os.fsync(fd)  # wowlint: allow WOW001\n"
        assert codes(src) == []

    def test_inline_allow_on_previous_line(self):
        src = "# wowlint: allow WOW001\nos.fsync(fd)\n"
        assert codes(src) == []

    def test_inline_allow_other_code_does_not_suppress(self):
        src = "os.fsync(fd)  # wowlint: allow WOW002\n"
        assert codes(src) == ["WOW001"]

    def test_baseline_roundtrip(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "relational" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import os\n\ndef f(fd):\n    os.fsync(fd)\n")
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")

        report = lint_paths([str(tmp_path)], use_baseline=False)
        assert [v.code for v in report.violations] == ["WOW001"]
        assert report.violations[0].scope == "f"

        baseline_file = tmp_path / baseline_mod.BASELINE_FILENAME
        baseline_file.write_text(baseline_mod.format_baseline(report.violations))
        report2 = lint_paths([str(tmp_path)])
        assert report2.ok
        assert report2.suppressed and not report2.stale

        # A *new* violation in a different scope is not covered.
        bad.write_text(bad.read_text() + "\ndef g(fd):\n    os.fsync(fd)\n")
        report3 = lint_paths([str(tmp_path)])
        assert [v.scope for v in report3.violations] == ["g"]

    def test_stale_entries_are_notes_not_failures(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        clean = tmp_path / "src" / "repro" / "relational" / "ok.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("x = 1\n")
        (tmp_path / baseline_mod.BASELINE_FILENAME).write_text(
            "WOW001 src/repro/relational/ok.py f\n"
        )
        report = lint_paths([str(tmp_path)])
        assert report.ok and report.stale

    def test_malformed_baseline_rejected(self):
        with pytest.raises(ValueError):
            baseline_mod.parse_baseline("WOW001 only-two-fields\n")


class TestCli:
    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        bad = tmp_path / "src" / "repro" / "relational" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("os.remove(p)\n")
        assert main(["--check", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "WOW001" in out and "fix:" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        ok = tmp_path / "src" / "repro" / "relational" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("x = 1\n")
        assert main(["--check", str(tmp_path)]) == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        bad = tmp_path / "src" / "repro" / "relational" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("os.remove(p)\n")
        assert main(["--check", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / baseline_mod.BASELINE_FILENAME).exists()
        assert main(["--check", str(tmp_path)]) == 0

    def test_usage_error_exits_two(self, capsys):
        assert main([]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("WOW001", "WOW002", "WOW003", "WOW004",
                     "WOW005", "WOW006", "WOW007"):
            assert code in out


class TestRepoIsClean:
    def test_repo_lints_clean_under_checked_in_baseline(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        report = lint_paths([os.path.join(root, "src"), os.path.join(root, "tests")])
        assert report.ok, report.render()
        assert not report.stale, report.render()

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        bad = tmp_path / "src" / "repro" / "relational" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(:\n")
        report = lint_paths([str(tmp_path)])
        assert not report.ok and report.parse_errors
