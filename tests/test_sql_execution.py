"""End-to-end SQL semantics through Database.execute."""

import datetime

import pytest

from repro.errors import (
    BindError,
    CatalogError,
    ConstraintError,
    ExecutionError,
    ForeignKeyError,
    PlanError,
    SqlError,
)
from repro.relational.database import Database


class TestProjectionAndFilter:
    def test_select_star(self, company):
        rows = company.query("SELECT * FROM dept ORDER BY id")
        assert rows == [(1, "eng"), (2, "sales"), (3, "hr")]

    def test_column_order_respected(self, company):
        result = company.execute("SELECT name, id FROM dept ORDER BY id LIMIT 1")
        assert result.columns == ["name", "id"]
        assert result.rows == [("eng", 1)]

    def test_computed_column(self, company):
        rows = company.query("SELECT salary * 2 AS double_pay FROM emp WHERE id = 10")
        assert rows == [(200.0,)]

    def test_where_3vl_null_filtered(self, company):
        # dan has NULL dept_id; NULL = 1 is unknown, so he is excluded.
        rows = company.query("SELECT id FROM emp WHERE dept_id = 1 ORDER BY id")
        assert rows == [(10,), (12,)]

    def test_is_null(self, company):
        rows = company.query("SELECT id FROM emp WHERE dept_id IS NULL")
        assert rows == [(13,)]

    def test_like(self, company):
        rows = company.query("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name")
        assert rows == [("ada",), ("dan",)]

    def test_in_list(self, company):
        rows = company.query("SELECT id FROM emp WHERE id IN (10, 13) ORDER BY id")
        assert rows == [(10,), (13,)]

    def test_between(self, company):
        rows = company.query("SELECT id FROM emp WHERE salary BETWEEN 80 AND 105 ORDER BY id")
        assert rows == [(10,), (11,)]

    def test_date_comparison(self, company):
        rows = company.query("SELECT id FROM emp WHERE hired > '2020-06-01' ORDER BY id")
        assert rows == [(11,)]

    def test_order_by_desc_nulls_first(self, company):
        rows = company.query("SELECT id FROM emp ORDER BY hired DESC")
        # NULLs first ascending => last when descending.
        assert rows[-1] == (12,)

    def test_order_by_output_alias(self, company):
        rows = company.query("SELECT salary * -1 AS neg FROM emp ORDER BY neg")
        assert rows[0] == (-120.0,)

    def test_limit_offset(self, company):
        rows = company.query("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1")
        assert rows == [(11,), (12,)]

    def test_distinct(self, company):
        rows = company.query("SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL ORDER BY dept_id")
        assert rows == [(1,), (2,)]

    def test_unknown_column_raises(self, company):
        with pytest.raises(BindError):
            company.query("SELECT ghost FROM emp")

    def test_unknown_table_raises(self, company):
        with pytest.raises(CatalogError):
            company.query("SELECT * FROM ghosts")

    def test_ambiguous_column_raises(self, company):
        with pytest.raises(BindError):
            company.query("SELECT name FROM emp, dept")


class TestJoins:
    def test_inner_join(self, company):
        rows = company.query(
            "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.id"
        )
        assert rows == [("ada", "eng"), ("bob", "sales"), ("cyd", "eng")]

    def test_left_join_pads_nulls(self, company):
        rows = company.query(
            "SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id ORDER BY e.id"
        )
        assert ("dan", None) in rows and len(rows) == 4

    def test_cross_join_counts(self, company):
        rows = company.query("SELECT COUNT(*) FROM emp, dept")
        assert rows == [(12,)]

    def test_implicit_join_with_where(self, company):
        rows = company.query(
            "SELECT e.name FROM emp e, dept d WHERE e.dept_id = d.id AND d.name = 'sales'"
        )
        assert rows == [("bob",)]

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE a (x INT PRIMARY KEY)")
        db.execute("CREATE TABLE b (x INT, y INT)")
        db.execute("CREATE TABLE c (y INT, z TEXT)")
        db.execute("INSERT INTO a VALUES (1), (2)")
        db.execute("INSERT INTO b VALUES (1, 10), (2, 20), (2, 30)")
        db.execute("INSERT INTO c VALUES (10, 'ten'), (30, 'thirty')")
        rows = db.query(
            "SELECT a.x, c.z FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y ORDER BY a.x"
        )
        assert rows == [(1, "ten"), (2, "thirty")]

    def test_self_join_via_aliases(self, company):
        rows = company.query(
            "SELECT e1.name, e2.name FROM emp e1 JOIN emp e2 "
            "ON e1.dept_id = e2.dept_id WHERE e1.id < e2.id"
        )
        assert rows == [("ada", "cyd")]

    def test_duplicate_alias_rejected(self, company):
        with pytest.raises(BindError):
            company.query("SELECT * FROM emp e, dept e")

    def test_join_null_keys_never_match(self, company):
        rows = company.query(
            "SELECT COUNT(*) FROM emp e JOIN emp f ON e.dept_id = f.dept_id"
        )
        # dan (NULL dept) matches nobody, including himself.
        assert rows == [(5,)]  # ada-ada, ada-cyd, cyd-ada, cyd-cyd, bob-bob


class TestAggregates:
    def test_global_aggregates(self, company):
        result = company.execute(
            "SELECT COUNT(*), COUNT(dept_id), SUM(salary), MIN(salary), MAX(salary) FROM emp"
        )
        assert result.rows == [(4, 3, 385.0, 75.0, 120.0)]

    def test_avg(self, company):
        assert company.execute("SELECT AVG(salary) FROM emp WHERE dept_id = 1").scalar() == 110.0

    def test_empty_input_yields_one_row(self, company):
        result = company.execute("SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 999")
        assert result.rows == [(0, None)]

    def test_group_by(self, company):
        rows = company.query(
            "SELECT dept_id, COUNT(*) AS n FROM emp GROUP BY dept_id ORDER BY dept_id"
        )
        assert rows == [(None, 1), (1, 2), (2, 1)]

    def test_group_by_having(self, company):
        rows = company.query(
            "SELECT dept_id FROM emp GROUP BY dept_id HAVING COUNT(*) > 1"
        )
        assert rows == [(1,)]

    def test_having_on_aggregate_not_in_select(self, company):
        rows = company.query(
            "SELECT dept_id FROM emp WHERE dept_id IS NOT NULL "
            "GROUP BY dept_id HAVING AVG(salary) > 100"
        )
        assert rows == [(1,)]

    def test_order_by_aggregate(self, company):
        rows = company.query(
            "SELECT dept_id, COUNT(*) AS n FROM emp WHERE dept_id IS NOT NULL "
            "GROUP BY dept_id ORDER BY COUNT(*) DESC"
        )
        assert rows[0] == (1, 2)

    def test_count_distinct(self, company):
        assert company.execute("SELECT COUNT(DISTINCT dept_id) FROM emp").scalar() == 2

    def test_non_grouped_column_rejected(self, company):
        with pytest.raises(PlanError):
            company.query("SELECT name, COUNT(*) FROM emp GROUP BY dept_id")

    def test_star_with_group_by_rejected(self, company):
        with pytest.raises(PlanError):
            company.query("SELECT * FROM emp GROUP BY dept_id")

    def test_aggregate_over_join(self, company):
        rows = company.query(
            "SELECT d.name, COUNT(*) AS n FROM emp e JOIN dept d ON e.dept_id = d.id "
            "GROUP BY d.name ORDER BY d.name"
        )
        assert rows == [("eng", 2), ("sales", 1)]


class TestDml:
    def test_insert_defaults_and_nulls(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT DEFAULT 'dflt', c INT)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        assert db.query("SELECT * FROM t") == [(1, "dflt", None)]

    def test_insert_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(SqlError):
            db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(SqlError):
            db.execute("INSERT INTO t (a) VALUES (1, 2)")

    def test_insert_expression_values(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (2 + 3)")
        assert db.query("SELECT a FROM t") == [(5,)]

    def test_insert_column_ref_rejected(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(BindError):
            db.execute("INSERT INTO t VALUES (a)")

    def test_pk_duplicate_rejected_and_atomic(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (2), (1)")
        # Statement atomicity: the 2 must have been rolled back too.
        assert db.query("SELECT * FROM t") == [(1,)]

    def test_update_expression(self, company):
        count = company.execute("UPDATE emp SET salary = salary + 10 WHERE dept_id = 1").rowcount
        assert count == 2
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 110.0

    def test_update_all_rows(self, company):
        assert company.execute("UPDATE emp SET salary = 1.0").rowcount == 4

    def test_update_not_null_violation_atomic(self, company):
        with pytest.raises(ConstraintError):
            company.execute("UPDATE emp SET name = NULL WHERE id > 0")
        assert company.execute("SELECT COUNT(*) FROM emp WHERE name IS NULL").scalar() == 0

    def test_delete_where(self, company):
        assert company.execute("DELETE FROM emp WHERE salary < 80").rowcount == 1
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_delete_all(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert db.execute("DELETE FROM t").rowcount == 3
        assert db.query("SELECT COUNT(*) FROM t") == [(0,)]


class TestForeignKeys:
    def test_insert_orphan_rejected(self, company):
        with pytest.raises(ForeignKeyError):
            company.execute("INSERT INTO emp VALUES (99, 'zed', 42, 1.0, NULL)")

    def test_null_fk_allowed(self, company):
        company.execute("INSERT INTO emp VALUES (99, 'zed', NULL, 1.0, NULL)")

    def test_delete_referenced_parent_rejected(self, company):
        with pytest.raises(ForeignKeyError):
            company.execute("DELETE FROM dept WHERE id = 1")

    def test_delete_unreferenced_parent_ok(self, company):
        company.execute("DELETE FROM dept WHERE id = 3")

    def test_update_child_to_orphan_rejected(self, company):
        with pytest.raises(ForeignKeyError):
            company.execute("UPDATE emp SET dept_id = 42 WHERE id = 10")

    def test_update_parent_key_with_children_rejected(self, company):
        with pytest.raises(ForeignKeyError):
            company.execute("UPDATE dept SET id = 9 WHERE id = 1")

    def test_update_parent_key_without_children_ok(self, company):
        company.execute("UPDATE dept SET id = 9 WHERE id = 3")

    def test_fk_must_reference_key(self, db):
        db.execute("CREATE TABLE p (a INT, b INT)")  # no key on a
        with pytest.raises(CatalogError):
            db.execute(
                "CREATE TABLE c (x INT, FOREIGN KEY (x) REFERENCES p (a))"
            )

    def test_drop_referenced_table_rejected(self, company):
        with pytest.raises(CatalogError):
            company.execute("DROP TABLE dept")


class TestDdl:
    def test_create_drop_cycle(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM t")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")  # no error

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS ghost")
        db.execute("DROP VIEW IF EXISTS ghost")

    def test_create_index_then_query_uses_it(self, company):
        company.execute("CREATE INDEX ix_salary ON emp (salary)")
        plan = company.execute("EXPLAIN SELECT * FROM emp WHERE salary > 100").plan
        assert "IndexRangeScan" in plan

    def test_drop_index(self, company):
        company.execute("CREATE INDEX ix_salary ON emp (salary)")
        company.execute("DROP INDEX ix_salary ON emp")
        plan = company.execute("EXPLAIN SELECT * FROM emp WHERE salary > 100").plan
        assert "IndexRangeScan" not in plan

    def test_unique_index_enforces(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("CREATE UNIQUE INDEX ux ON t (a)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_duplicate_table_rejected(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (b INT)")


class TestSystemCatalogQueries:
    def test_tables_listing(self, company):
        rows = company.query("SELECT name, kind FROM _tables ORDER BY name")
        assert ("emp", "table") in rows and ("eng_emps", "view") in rows

    def test_columns_listing(self, company):
        rows = company.query(
            "SELECT name FROM _columns WHERE table_name = 'emp' ORDER BY position"
        )
        assert rows == [("id",), ("name",), ("dept_id",), ("salary",), ("hired",)]

    def test_indexes_listing(self, company):
        rows = company.query("SELECT name FROM _indexes WHERE table_name = 'dept'")
        assert rows == [("pk_dept",)]

    def test_views_listing(self, company):
        rows = company.query("SELECT name, check_option FROM _views")
        assert rows == [("eng_emps", True)]


class TestErrors:
    def test_division_by_zero_surfaces(self, company):
        with pytest.raises(ExecutionError):
            company.query("SELECT salary / 0 FROM emp")

    def test_scalar_on_multirow_raises(self, company):
        with pytest.raises(ExecutionError):
            company.execute("SELECT id FROM emp").scalar()

    def test_mappings(self, company):
        mappings = company.execute("SELECT id, name FROM dept ORDER BY id LIMIT 1").mappings()
        assert mappings == [{"id": 1, "name": "eng"}]
