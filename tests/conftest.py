"""Shared fixtures: fresh databases and small canonical datasets."""

from __future__ import annotations

import os

import pytest

from repro.relational.database import Database


@pytest.fixture(scope="session", autouse=True)
def _verify_all_plans():
    """With ``WOW_VERIFY_PLANS=1`` (on in CI), the static plan verifier
    runs on every plan the whole suite produces — any schema/arity/type
    violation at an operator boundary fails the test that planned it."""
    from repro.analysis import planverify

    enabled = os.environ.get("WOW_VERIFY_PLANS", "") == "1"
    previous = planverify.set_verify_plans(enabled or planverify.VERIFY_PLANS)
    yield
    planverify.set_verify_plans(previous)


@pytest.fixture(scope="session", autouse=True)
def _telemetry_sink():
    """With ``WOW_TELEMETRY_DIR`` set (CI does), every statement the suite
    executes is appended to ``<dir>/statements.jsonl`` via the process-wide
    default sink — uploaded as an artifact when the tier-1 job fails."""
    from repro.obs.statlog import set_default_sink

    directory = os.environ.get("WOW_TELEMETRY_DIR", "")
    if directory:
        os.makedirs(directory, exist_ok=True)
        set_default_sink(os.path.join(directory, "statements.jsonl"))
    yield
    if directory:
        set_default_sink(None)


@pytest.fixture
def db() -> Database:
    """A fresh in-memory database."""
    return Database()


@pytest.fixture
def company(db: Database) -> Database:
    """A small dept/emp database with an FK and a view."""
    db.execute("CREATE TABLE dept (id INT PRIMARY KEY, name TEXT NOT NULL)")
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT NOT NULL, "
        "dept_id INT, salary FLOAT, hired DATE, "
        "FOREIGN KEY (dept_id) REFERENCES dept (id))"
    )
    db.execute("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'hr')")
    db.execute(
        "INSERT INTO emp VALUES "
        "(10, 'ada', 1, 100.0, '2020-01-02'), "
        "(11, 'bob', 2, 90.0, '2021-03-04'), "
        "(12, 'cyd', 1, 120.0, NULL), "
        "(13, 'dan', NULL, 75.0, '2019-07-01')"
    )
    db.execute(
        "CREATE VIEW eng_emps AS "
        "SELECT id, name, salary FROM emp WHERE dept_id = 1 WITH CHECK OPTION"
    )
    return db
