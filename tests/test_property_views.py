"""Property-based tests of the view-update translation invariants.

The core correctness claim of forms-over-views: DML through a view is
indistinguishable from the equivalent DML on the base table, restricted to
the view's row and column window.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckOptionError
from repro.relational.database import Database

COLUMNS = ["id", "grp", "val"]


def _build(rows):
    db = Database()
    db.execute("CREATE TABLE base (id INT PRIMARY KEY, grp INT, val INT)")
    db.bulk_insert(
        "base",
        [{"id": i, "grp": grp, "val": val} for i, (grp, val) in enumerate(rows)],
    )
    db.execute(
        "CREATE VIEW v AS SELECT id, val FROM base WHERE grp = 1"
    )
    return db


row_values = st.tuples(
    st.one_of(st.none(), st.integers(0, 3)),  # grp
    st.integers(-100, 100),  # val
)


class TestViewUpdateEquivalence:
    @given(rows=st.lists(row_values, max_size=25), new_val=st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_update_through_view_equals_predicated_update(self, rows, new_val):
        db_view = _build(rows)
        db_direct = _build(rows)
        count_view = db_view.update("v", {"val": new_val})
        count_direct = db_direct.update("base", {"val": new_val}, "grp = 1")
        assert count_view == count_direct
        assert db_view.query("SELECT * FROM base ORDER BY id") == db_direct.query(
            "SELECT * FROM base ORDER BY id"
        )

    @given(rows=st.lists(row_values, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_delete_through_view_equals_predicated_delete(self, rows):
        db_view = _build(rows)
        db_direct = _build(rows)
        assert db_view.delete("v") == db_direct.delete("base", "grp = 1")
        assert db_view.query("SELECT * FROM base ORDER BY id") == db_direct.query(
            "SELECT * FROM base ORDER BY id"
        )

    @given(rows=st.lists(row_values, max_size=25), val=st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_insert_through_view_lands_inside_view(self, rows, val):
        db = _build(rows)
        new_id = 10_000
        db.insert("v", {"id": new_id, "val": val})
        # The predicate default filled grp = 1, so the view shows the row.
        assert (new_id, val) in db.query("SELECT id, val FROM v")
        assert db.query(f"SELECT grp FROM base WHERE id = {new_id}") == [(1,)]

    @given(rows=st.lists(row_values, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_view_rowset_equals_predicated_select(self, rows):
        db = _build(rows)
        through_view = db.query("SELECT id, val FROM v ORDER BY id")
        direct = db.query("SELECT id, val FROM base WHERE grp = 1 ORDER BY id")
        assert through_view == direct

    @given(rows=st.lists(row_values, max_size=20), escape_grp=st.integers(2, 3))
    @settings(max_examples=40, deadline=None)
    def test_check_option_always_blocks_escape(self, rows, escape_grp):
        db = _build(rows)
        db.execute(
            "CREATE VIEW vc AS SELECT id, grp FROM base WHERE grp = 1 "
            "WITH CHECK OPTION"
        )
        visible = db.query("SELECT id FROM vc")
        if not visible:
            return
        with pytest.raises(CheckOptionError):
            db.update("vc", {"grp": escape_grp}, f"id = {visible[0][0]}")
        # Nothing escaped: the view population is unchanged.
        assert db.query("SELECT id FROM vc") == visible
