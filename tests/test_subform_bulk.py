"""Tests for subform windows, bulk_insert, and example smoke runs."""

import pytest

from repro.core import WowApp
from repro.errors import ConstraintError
from repro.windows.geometry import Rect


@pytest.fixture
def app(company):
    return WowApp(company, width=80, height=22)


@pytest.fixture
def subform(app, company):
    window = app.open_subform(
        "dept", "emp", on=[("id", "dept_id")], rect=Rect(0, 0, 70, 18)
    )
    return window, app


class TestSubform:
    def test_detail_follows_master(self, subform, company):
        window, app = subform
        assert [row[0] for row in window.detail_rows] == [10, 12]  # eng employees
        app.send_keys("<DOWN>")  # dept 2 = sales
        assert [row[0] for row in window.detail_rows] == [11]
        app.send_keys("<DOWN>")  # dept 3 = hr, nobody
        assert window.detail_rows == []

    def test_detail_grid_rendered(self, subform, company):
        window, app = subform
        app.expect_on_screen("ada")
        app.expect_on_screen("cyd")

    def test_status_shows_counts(self, subform):
        window, _app = subform
        assert "2 detail row(s)" in window.status.message

    def test_master_edit_through_subform(self, subform, company):
        window, app = subform
        app.send_keys("<F2><TAB>research<F2>")
        assert company.query("SELECT name FROM dept WHERE id = 1") == [("research",)]

    def test_master_delete_respects_fk(self, subform, company):
        window, app = subform
        app.send_keys("<F6>")  # dept 1 still has employees
        assert "error" in window.controller.message

    def test_detail_refreshes_after_external_change(self, subform, company):
        window, app = subform
        company.execute("UPDATE emp SET dept_id = 2 WHERE id = 12")
        app.send_keys("<F5>")
        assert [row[0] for row in window.detail_rows] == [10]

    def test_requires_link(self, app):
        with pytest.raises(ValueError):
            app.open_subform("dept", "emp", on=[], rect=Rect(0, 0, 70, 18))

    def test_tab_reaches_grid_and_scrolls(self, subform, company):
        window, app = subform
        # TAB through master fields (id, name) to the grid, then DOWN moves
        # the grid selection instead of the master record.
        app.send_keys("<TAB><TAB>")
        assert window.focused_widget is window.grid
        before = window.controller.position
        app.send_keys("<DOWN>")
        assert window.controller.position == before
        assert window.grid.selected == 1


class TestBulkInsert:
    def test_bulk_insert_counts(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        assert db.bulk_insert("t", [{"a": i} for i in range(100)]) == 100
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 100

    def test_bulk_insert_atomic(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        with pytest.raises(ConstraintError):
            db.bulk_insert("t", [{"a": 1}, {"a": 2}, {"a": 1}])
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_bulk_insert_single_wal_commit(self, tmp_path):
        from repro.relational.database import Database

        db = Database(path=str(tmp_path / "db"), fsync=False)
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.bulk_insert("t", [{"a": i} for i in range(50)])
        assert db.wal.stats["commits"] == 1
        assert db.wal.stats["ops"] == 50
        db.close()

    def test_bulk_insert_through_view(self, company):
        company.bulk_insert(
            "eng_emps",
            [{"id": 70 + i, "name": f"bulk{i}", "salary": 1.0} for i in range(3)],
        )
        assert (
            company.execute(
                "SELECT COUNT(*) FROM emp WHERE dept_id = 1"
            ).scalar()
            == 5
        )


class TestExampleSmoke:
    """Each example's main() must run cleanly end to end."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "quickstart",
            "registrar",
            "supplier_parts",
            "library_qbf",
            "protection_console",
            "order_entry",
        ],
    )
    def test_example_runs(self, module_name, capsys):
        import importlib.util
        import os
        import sys

        examples_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
        )
        path = os.path.join(examples_dir, f"{module_name}.py")
        spec = importlib.util.spec_from_file_location(f"example_{module_name}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 100  # examples narrate what they do
