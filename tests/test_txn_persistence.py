"""Tests for transactions (undo) and on-disk durability (WAL + recovery)."""

import os

import pytest

from repro.errors import ConstraintError, TransactionError
from repro.relational.database import Database


@pytest.fixture
def disk_db(tmp_path):
    db = Database(path=str(tmp_path / "db"), fsync=False)
    yield db
    db.close()


def setup_t(db):
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")


class TestTransactions:
    def test_commit_keeps_changes(self, db):
        setup_t(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (3, 'three')")
        db.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_rollback_insert(self, db):
        setup_t(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (3, 'three')")
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_rollback_delete(self, db):
        setup_t(db)
        db.execute("BEGIN")
        db.execute("DELETE FROM t")
        db.execute("ROLLBACK")
        assert db.query("SELECT * FROM t ORDER BY a") == [(1, "one"), (2, "two")]

    def test_rollback_update(self, db):
        setup_t(db)
        db.execute("BEGIN")
        db.execute("UPDATE t SET b = 'ONE' WHERE a = 1")
        db.execute("ROLLBACK")
        assert db.query("SELECT b FROM t WHERE a = 1") == [("one",)]

    def test_rollback_mixed_sequence(self, db):
        setup_t(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (3, 'three')")
        db.execute("UPDATE t SET b = 'THREE' WHERE a = 3")
        db.execute("DELETE FROM t WHERE a = 1")
        db.execute("UPDATE t SET b = 'TWO!' WHERE a = 2")
        db.execute("ROLLBACK")
        assert db.query("SELECT * FROM t ORDER BY a") == [(1, "one"), (2, "two")]

    def test_rollback_restores_unique_constraint_state(self, db):
        setup_t(db)
        db.execute("BEGIN")
        db.execute("DELETE FROM t WHERE a = 1")
        db.execute("ROLLBACK")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (1, 'again')")

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.execute("COMMIT")
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK")

    def test_statement_atomicity_inside_txn(self, db):
        setup_t(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (3, 'three')")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (4, 'four'), (1, 'dup')")
        db.execute("COMMIT")
        # 3 survived; 4 was rolled back with its failed statement.
        assert db.query("SELECT a FROM t ORDER BY a") == [(1,), (2,), (3,)]

    def test_rollback_of_grown_update(self, db):
        """Updates that relocate rows between pages still roll back cleanly."""
        db.execute("CREATE TABLE big (a INT PRIMARY KEY, payload TEXT)")
        for i in range(8):
            db.insert("big", {"a": i, "payload": "x" * 400})
        db.execute("BEGIN")
        db.update("big", {"payload": "y" * 3000}, "a = 0")
        db.update("big", {"payload": "z" * 3500}, "a = 1")
        db.execute("ROLLBACK")
        rows = db.query("SELECT payload FROM big WHERE a IN (0, 1) ORDER BY a")
        assert rows == [("x" * 400,), ("x" * 400,)]

    def test_programmatic_dml_joins_open_txn(self, db):
        setup_t(db)
        db.execute("BEGIN")
        db.insert("t", {"a": 9, "b": "nine"})
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2


class TestPersistence:
    def test_clean_close_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        setup_t(db)
        db.close()
        db2 = Database(path=path, fsync=False)
        assert db2.query("SELECT * FROM t ORDER BY a") == [(1, "one"), (2, "two")]
        db2.close()

    def test_crash_recovery_replays_wal(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        setup_t(db)
        db.execute("INSERT INTO t VALUES (3, 'three')")
        db.execute("UPDATE t SET b = 'TWO' WHERE a = 2")
        db.execute("DELETE FROM t WHERE a = 1")
        # Simulate a crash: no close(), no checkpoint.
        db2 = Database(path=path, fsync=False)
        assert db2.query("SELECT * FROM t ORDER BY a") == [(2, "TWO"), (3, "three")]
        db2.close()

    def test_uncommitted_txn_lost_on_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        setup_t(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (99, 'phantom')")
        # Crash before COMMIT.
        db2 = Database(path=path, fsync=False)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db2.close()

    def test_checkpoint_truncates_wal(self, disk_db, tmp_path):
        setup_t(disk_db)
        wal_path = os.path.join(disk_db.path, "wal.log")
        assert os.path.getsize(wal_path) > 0
        disk_db.checkpoint()
        assert os.path.getsize(wal_path) == 0
        # Data still there after reopen.
        disk_db.close()
        db2 = Database(path=disk_db.path, fsync=False)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db2.close()

    def test_views_and_indexes_survive_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        setup_t(db)
        db.execute("CREATE INDEX ix_b ON t (b)")
        db.execute("CREATE VIEW v AS SELECT a FROM t WHERE a > 1")
        db.close()
        db2 = Database(path=path, fsync=False)
        assert db2.query("SELECT * FROM v") == [(2,)]
        assert "ix_b" in db2.catalog.table("t").indexes
        plan = db2.execute("EXPLAIN SELECT * FROM t WHERE b = 'one'").plan
        assert "IndexEqScan" in plan
        db2.close()

    def test_dates_roundtrip_through_wal(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        db.execute("CREATE TABLE ev (d DATE, note TEXT)")
        db.execute("INSERT INTO ev VALUES ('1983-05-23', 'sigmod')")
        db2 = Database(path=path, fsync=False)  # crash-reopen
        import datetime

        assert db2.query("SELECT d FROM ev") == [(datetime.date(1983, 5, 23),)]
        db2.close()

    def test_torn_wal_tail_ignored(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        setup_t(db)
        wal_path = os.path.join(path, "wal.log")
        with open(wal_path, "ab") as fh:
            fh.write(b'{"t": "insert", "tab": "t", "row": [5,')  # torn write
        db2 = Database(path=path, fsync=False)
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db2.close()

    def test_drop_table_removes_heap_file(self, disk_db):
        setup_t(disk_db)
        heap_path = os.path.join(disk_db.path, "t.heap")
        assert os.path.exists(heap_path)
        disk_db.execute("DROP TABLE t")
        assert not os.path.exists(heap_path)

    def test_large_dataset_roundtrip(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path, fsync=False)
        db.execute("CREATE TABLE n (i INT PRIMARY KEY, txt TEXT)")
        db.execute("BEGIN")
        for i in range(2000):
            db.insert("n", {"i": i, "txt": f"row-{i:05d}"})
        db.execute("COMMIT")
        db.close()
        db2 = Database(path=path, fsync=False)
        assert db2.execute("SELECT COUNT(*) FROM n").scalar() == 2000
        assert db2.query("SELECT txt FROM n WHERE i = 1234") == [("row-01234",)]
        db2.close()

    def test_stats_expose_wal_activity(self, disk_db):
        setup_t(disk_db)
        assert disk_db.wal.stats["commits"] == 1  # one INSERT statement
        assert disk_db.wal.stats["ops"] == 2  # two rows
