"""Tests for the vectorized executor's new machinery: the expression
compiler (compiled closures must match the interpreter exactly, including
3VL and error texts), the compiled per-schema row decoders, and the
observability surfaces (EXPLAIN ANALYZE batch/compile annotations and the
metrics snapshot's executor section).

Cross-cutting equivalence of rows() vs rows_batched() over random data
lives in test_property_engine.py; this module covers the units.
"""

import datetime

import pytest

from repro.errors import ExecutionError, StorageError, TypeMismatchError
from repro.relational import exprcompile
from repro.relational.database import Database
from repro.relational.expr import (
    BinOp,
    Case,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    RowLayout,
    UnaryOp,
    bind,
)
from repro.relational.exprcompile import compile_expr, compile_row_fn
from repro.relational.planner import PlannerConfig
from repro.relational.rowcodec import decode_row, encode_row, span_decoder
from repro.relational.schema import Column, TableSchema
from repro.relational.types import ColumnType

LAYOUT = RowLayout(
    [
        ("t", "a", ColumnType.INT),
        ("t", "b", ColumnType.TEXT),
        ("t", "c", ColumnType.FLOAT),
        ("t", "d", ColumnType.BOOL),
    ]
)

ROWS = [
    (1, "x", 3.5, True),
    (None, None, None, None),
    (-7, "", 0.0, False),
    (0, "abc", -1.25, True),
    (42, "xyzzy", float("inf"), False),
]


def both(expr):
    """(interpreter result, compiled result) per row — must agree exactly."""
    bound = bind(expr, LAYOUT)
    fn, compiled = compile_expr(bound)
    assert compiled, f"expected {expr.to_sql()} to compile"
    return [(bound.eval(row), fn(row)) for row in ROWS]


class TestCompiledEquivalence:
    @pytest.mark.parametrize(
        "expr",
        [
            BinOp("=", ColumnRef("a"), Literal(1)),
            BinOp("!=", ColumnRef("a"), Literal(0)),
            BinOp("<", ColumnRef("a"), Literal(10)),
            BinOp(">=", ColumnRef("c"), Literal(0.0)),
            BinOp("+", ColumnRef("a"), Literal(5)),
            BinOp("-", ColumnRef("a"), ColumnRef("a")),
            BinOp("*", ColumnRef("c"), Literal(2.0)),
            BinOp("/", ColumnRef("a"), Literal(2)),
            BinOp("%", ColumnRef("a"), Literal(3)),
            BinOp("+", ColumnRef("b"), Literal("-suffix")),
            BinOp(
                "and",
                BinOp(">", ColumnRef("a"), Literal(0)),
                BinOp("<", ColumnRef("a"), Literal(10)),
            ),
            BinOp(
                "or",
                IsNull(ColumnRef("a")),
                BinOp("=", ColumnRef("b"), Literal("x")),
            ),
            UnaryOp("not", BinOp(">", ColumnRef("a"), Literal(0))),
            UnaryOp("-", ColumnRef("a")),
            IsNull(ColumnRef("b")),
            IsNull(ColumnRef("b"), negated=True),
            Like(ColumnRef("b"), "x%"),
            Like(ColumnRef("b"), "%z%", negated=True),
            InList(ColumnRef("a"), [Literal(1), Literal(42)]),
            InList(ColumnRef("a"), [Literal(1), Literal(None)], negated=True),
            FuncCall("upper", [ColumnRef("b")]),
            FuncCall("coalesce", [ColumnRef("a"), Literal(-1)]),
            FuncCall("length", [ColumnRef("b")]),
            Case(
                [(BinOp(">", ColumnRef("a"), Literal(0)), Literal("pos"))],
                else_expr=Literal("neg-or-null"),
            ),
            Case([(IsNull(ColumnRef("a")), Literal("null"))]),
        ],
        ids=lambda e: e.to_sql(),
    )
    def test_matches_interpreter(self, expr):
        for interpreted, compiled in both(expr):
            assert compiled == interpreted
            assert type(compiled) is type(interpreted)  # True, not 1

    def test_three_valued_logic_table(self):
        # NULL AND FALSE = FALSE, NULL AND TRUE = NULL, NULL OR TRUE = TRUE...
        a = BinOp(">", ColumnRef("a"), Literal(0))  # NULL on row 2
        for connective in ("and", "or"):
            for other in (Literal(True), Literal(False), Literal(None)):
                for interpreted, compiled in both(BinOp(connective, a, other)):
                    assert compiled is interpreted or compiled == interpreted

    def test_division_by_zero_matches(self):
        bound = bind(BinOp("/", ColumnRef("a"), Literal(0)), LAYOUT)
        fn, compiled = compile_expr(bound)
        assert compiled
        with pytest.raises(ExecutionError) as interp:
            bound.eval(ROWS[0])
        with pytest.raises(ExecutionError) as comp:
            fn(ROWS[0])
        assert str(comp.value) == str(interp.value)

    def test_type_errors_match(self):
        cases = [
            BinOp("-", ColumnRef("b"), Literal(1)),  # arithmetic on TEXT
            BinOp("+", ColumnRef("d"), Literal(1)),  # arithmetic on BOOL
            UnaryOp("-", ColumnRef("b")),  # negate TEXT
            Like(ColumnRef("a"), "x%"),  # LIKE on INT
        ]
        for expr in cases:
            bound = bind(expr, LAYOUT)
            fn, compiled = compile_expr(bound)
            assert compiled
            with pytest.raises(TypeMismatchError) as interp:
                bound.eval(ROWS[0])
            with pytest.raises(TypeMismatchError) as comp:
                fn(ROWS[0])
            assert str(comp.value) == str(interp.value)

    def test_in_list_does_not_let_true_match_one(self):
        # Python's True == 1 must not leak through IN.
        bound = bind(InList(ColumnRef("d"), [Literal(1)]), LAYOUT)
        fn, compiled = compile_expr(bound)
        assert compiled
        with pytest.raises(TypeMismatchError):
            fn((1, "x", 0.0, True))  # compare(BOOL, INT) raises, like eval

    def test_param_stays_live(self):
        param = Param(0)
        bound = bind(BinOp(">", ColumnRef("a"), param), LAYOUT)
        fn, compiled = compile_expr(bound)
        assert compiled
        with pytest.raises(ExecutionError):  # unset parameter
            fn(ROWS[0])
        param.set(0)
        assert fn(ROWS[0]) is True
        param.set(100)  # same closure, new value: no recompilation needed
        assert fn(ROWS[0]) is False

    def test_unbound_column_falls_back(self):
        before = dict(exprcompile.COMPILE_METRICS)
        unbound = BinOp("=", ColumnRef("a"), Literal(1))  # never bound
        fn, compiled = compile_expr(unbound)
        assert not compiled
        assert exprcompile.COMPILE_METRICS["fallback"] == before["fallback"] + 1
        assert fn == unbound.eval  # the interpreter, not a closure

    def test_compile_row_fn_builds_tuples(self):
        exprs = [
            bind(ColumnRef("b"), LAYOUT),
            bind(BinOp("+", ColumnRef("a"), Literal(1)), LAYOUT),
        ]
        fn, compiled = compile_row_fn(exprs)
        assert compiled
        assert fn((1, "x", 3.5, True)) == ("x", 2)
        assert fn((None, None, None, None)) == (None, None)

    def test_generated_source_attached(self):
        bound = bind(BinOp("=", ColumnRef("a"), Literal(1)), LAYOUT)
        fn, compiled = compile_expr(bound)
        assert compiled
        assert "def _compiled(row):" in fn.__source__


SCHEMA = TableSchema(
    "codec",
    [
        Column("i", ColumnType.INT),
        Column("t", ColumnType.TEXT),
        Column("f", ColumnType.FLOAT),
        Column("b", ColumnType.BOOL),
        Column("d", ColumnType.DATE),
    ],
)

CODEC_ROWS = [
    (1, "hello", 2.5, True, datetime.date(1983, 6, 1)),
    (None, None, None, None, None),
    (-(2**40), "", float("-inf"), False, datetime.date(1, 1, 1)),
    (0, "naïve-ütf8 ☃", -0.0, True, datetime.date(9999, 12, 31)),
]


class TestSpanDecoder:
    def test_matches_decode_row(self):
        decode = span_decoder(SCHEMA)
        for row in CODEC_ROWS:
            record = encode_row(SCHEMA, row)
            # Embed at an offset to prove span bounds are honoured.
            buf = b"\xaa" * 3 + record + b"\xbb" * 2
            assert decode(buf, 3, 3 + len(record)) == decode_row(SCHEMA, record)
            assert decode(buf, 3, 3 + len(record)) == row

    def test_decoder_cached_per_schema(self):
        assert span_decoder(SCHEMA) is span_decoder(SCHEMA)

    def test_error_messages_match_scalar_codec(self):
        record = encode_row(SCHEMA, CODEC_ROWS[0])
        decode = span_decoder(SCHEMA)
        for end in range(len(record)):  # every truncation point
            with pytest.raises(StorageError) as span_err:
                decode(record, 0, end)
            with pytest.raises(StorageError) as row_err:
                decode_row(SCHEMA, record[:end])
            assert str(span_err.value) == str(row_err.value)
        with pytest.raises(StorageError, match="trailing bytes"):
            decode(record + b"\x00\x00", 0, len(record) + 2)

    def test_generated_source_attached(self):
        assert "def _decode(buf, start, end):" in span_decoder(SCHEMA).__source__


class TestExecutorObservability:
    def _db(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, name TEXT)")
        for i in range(10):
            db.insert("t", {"id": i, "grp": i % 3, "name": f"n{i}"})
        return db

    def test_explain_analyze_shows_batches_and_compiled(self):
        db = self._db()
        text = db.execute(
            "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM t "
            "WHERE id >= 2 GROUP BY grp ORDER BY grp"
        ).plan
        assert "batches=" in text
        assert "compiled=yes" in text
        assert "compiled=no" not in text

    def test_explain_analyze_tuple_mode_has_no_batches(self):
        db = self._db()
        db.set_planner_config(PlannerConfig(vectorized=False))
        text = db.execute("EXPLAIN ANALYZE SELECT * FROM t WHERE id >= 2").plan
        assert "batches=" not in text
        assert "rows=8" in text

    def test_metrics_snapshot_executor_section(self):
        db = self._db()
        db.query("SELECT name FROM t WHERE grp = 1")
        snap = db.metrics_snapshot()["executor"]
        assert snap["vectorized"] is True
        assert snap["batches"] >= 1
        assert snap["batch_rows"] >= 3
        assert snap["exprs_compiled"] >= 1

    def test_vectorized_flag_in_plan_cache_fingerprint(self):
        # Cached plans must never cross executor modes.
        assert (
            PlannerConfig(vectorized=True).fingerprint()
            != PlannerConfig(vectorized=False).fingerprint()
        )

    def test_ab_modes_agree_end_to_end(self):
        db = self._db()
        sql = (
            "SELECT grp, COUNT(*) AS n FROM t WHERE name LIKE 'n%' "
            "GROUP BY grp HAVING COUNT(*) > 1 ORDER BY grp"
        )
        vectorized = db.query(sql)
        db.set_planner_config(PlannerConfig(vectorized=False))
        assert db.query(sql) == vectorized
