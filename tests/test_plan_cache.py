"""Tests for the statement/plan cache, prepared statements, and invalidation.

The invariant under test: a cached plan is **never** served across a
generation bump (DDL, ANALYZE, planner-config change), while plain DML
neither invalidates nor goes stale — cached operator trees scan live
tables.
"""

import pytest

from repro.errors import ExecutionError, SqlError
from repro.relational.database import Database
from repro.relational.planner import PlannerConfig
from repro.relational.plancache import PlanCache, normalize_sql


def plans(db: Database) -> int:
    return db.planner.metrics["plans"]


def cache_stats(db: Database) -> dict:
    return db.metrics_snapshot()["plan_cache"]


class TestCacheHits:
    def test_repeated_select_plans_once(self, company):
        sql = "SELECT name FROM emp WHERE salary > 80 ORDER BY name"
        first = company.query(sql)
        before = plans(company)
        for _ in range(5):
            assert company.query(sql) == first
        assert plans(company) == before
        assert cache_stats(company)["hits"] >= 5

    def test_whitespace_variants_share_an_entry(self, company):
        company.query("SELECT id FROM dept")
        before = plans(company)
        company.query("SELECT  id\n FROM   dept")
        assert plans(company) == before

    def test_normalize_sql(self):
        assert normalize_sql("SELECT  a\n\tFROM t") == "SELECT a FROM t"
        # Case is preserved: 'x' and 'X' are different string literals.
        assert normalize_sql("SELECT 'X'") != normalize_sql("SELECT 'x'")

    def test_stream_uses_the_cache(self, company):
        sql = "SELECT id FROM emp ORDER BY id"
        _cols, iterator = company.stream(sql)
        rows = list(iterator)
        before = plans(company)
        _cols, iterator = company.stream(sql)
        assert list(iterator) == rows
        assert plans(company) == before

    def test_dml_does_not_invalidate_but_is_visible(self, company):
        sql = "SELECT COUNT(*) FROM emp"
        assert company.query(sql) == [(4,)]
        generation = cache_stats(company)["generation"]
        company.execute("INSERT INTO emp VALUES (14, 'eve', 2, 80.0, NULL)")
        # Same generation, yet the cached plan sees the new row.
        assert cache_stats(company)["generation"] == generation
        assert company.query(sql) == [(5,)]

    def test_cache_disabled_by_capacity_zero(self, company):
        db = Database(plan_cache_size=0)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.query("SELECT a FROM t") == [(1,)]
        assert db.query("SELECT a FROM t") == [(1,)]
        assert cache_stats(db)["hits"] == 0
        assert cache_stats(db)["entries"] == 0

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        for i in range(3):
            cache.store(cache.key(f"SELECT {i}", ()), statement=i)
        assert len(cache) == 2
        assert cache.stats["evictions"] == 1
        # The oldest entry was evicted.
        assert cache.lookup(cache.key("SELECT 0", ())) is None


class TestInvalidation:
    def test_drop_and_recreate_table_changes_results(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.query("SELECT * FROM t") == [(1,)]
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        db.execute("INSERT INTO t VALUES (2, 'x')")
        # The cached SELECT * plan projected one column; it must not survive.
        assert db.query("SELECT * FROM t") == [(2, "x")]

    def test_view_redefinition_invalidates(self, company):
        company.execute("CREATE VIEW v AS SELECT id FROM emp WHERE salary > 100")
        assert company.query("SELECT * FROM v") == [(12,)]
        company.execute("DROP VIEW v")
        company.execute("CREATE VIEW v AS SELECT id FROM emp WHERE salary < 80")
        assert company.query("SELECT * FROM v") == [(13,)]

    def test_create_index_invalidates(self, company):
        sql = "SELECT name FROM emp WHERE id = 12"
        assert company.query(sql) == [("cyd",)]
        generation = cache_stats(company)["generation"]
        company.execute("CREATE INDEX emp_id_ix ON emp (id)")
        assert cache_stats(company)["generation"] > generation
        # Replanned (now through the index) and still correct.
        assert company.query(sql) == [("cyd",)]
        company.execute("DROP INDEX emp_id_ix ON emp")
        assert company.query(sql) == [("cyd",)]

    def test_analyze_invalidates(self, company):
        company.query("SELECT id FROM emp")
        generation = cache_stats(company)["generation"]
        company.execute("ANALYZE")
        assert cache_stats(company)["generation"] > generation

    def test_set_planner_config_invalidates(self, company):
        sql = "SELECT name FROM emp WHERE dept_id = 1"
        rows = company.query(sql)
        generation = cache_stats(company)["generation"]
        company.set_planner_config(PlannerConfig(enable_pushdown=False))
        assert cache_stats(company)["generation"] > generation
        assert sorted(company.query(sql)) == sorted(rows)

    def test_in_place_config_change_misses_by_fingerprint(self, company):
        sql = "SELECT name FROM emp WHERE dept_id = 1"
        rows = company.query(sql)
        before = plans(company)
        company.planner_config.enable_index_selection = False
        # Different fingerprint -> different key -> replanned, not stale.
        assert sorted(company.query(sql)) == sorted(rows)
        assert plans(company) == before + 1

    def test_out_of_band_catalog_change_detected(self, db):
        from repro.relational.schema import Column, TableSchema
        from repro.relational.types import ColumnType

        db.execute("CREATE TABLE t (a INT)")
        db.query("SELECT * FROM t")
        # Code (not SQL) creating a table bumps catalog.generation; the
        # next lookup must notice and invalidate.
        db.catalog.create_table(
            TableSchema("u", [Column("b", ColumnType.INT)])
        )
        generation = cache_stats(db)["generation"]
        db.query("SELECT * FROM t")
        assert cache_stats(db)["generation"] > generation

    def test_entries_cleared_on_invalidation(self, company):
        company.query("SELECT id FROM dept")
        assert cache_stats(company)["entries"] >= 1
        company.execute("CREATE TABLE scratch (a INT)")
        assert cache_stats(company)["entries"] == 0


class TestNotPlanCacheable:
    def test_subquery_select_stays_fresh(self, company):
        sql = "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)"
        assert sorted(company.query(sql)) == [("ada",), ("cyd",)]
        # Raising the average must change the answer: the subquery is
        # materialized at plan time, so the plan must not be reused.
        company.execute("INSERT INTO emp VALUES (15, 'moe', 1, 500.0, NULL)")
        assert sorted(company.query(sql)) == [("moe",)]

    def test_system_table_select_stays_fresh(self, db):
        db.execute("CREATE TABLE t1 (a INT)")
        names = db.query("SELECT name FROM _tables ORDER BY name")
        db.execute("CREATE TABLE t2 (a INT)")
        after = db.query("SELECT name FROM _tables ORDER BY name")
        assert len(after) == len(names) + 1

    def test_subquery_inside_view_not_plan_cached(self, company):
        company.execute(
            "CREATE VIEW top_paid AS "
            "SELECT name FROM emp WHERE salary >= (SELECT MAX(salary) FROM emp)"
        )
        sql = "SELECT * FROM top_paid"
        assert company.query(sql) == [("cyd",)]
        company.execute("INSERT INTO emp VALUES (16, 'zed', 1, 999.0, NULL)")
        assert company.query(sql) == [("zed",)]


class TestPreparedStatements:
    def test_prepared_select_replans_never(self, company):
        stmt = company.prepare("SELECT name FROM emp WHERE dept_id = ?")
        assert stmt.param_count == 1
        assert sorted(stmt.query([1])) == [("ada",), ("cyd",)]
        before = plans(company)
        for dept in (1, 2, 3, 1, 2):
            stmt.query([dept])
        assert plans(company) == before

    def test_prepared_insert_and_update(self, company):
        ins = company.prepare("INSERT INTO dept VALUES (?, ?)")
        ins.execute([4, "ops"])
        assert company.query("SELECT name FROM dept WHERE id = 4") == [("ops",)]
        upd = company.prepare("UPDATE dept SET name = ? WHERE id = ?")
        assert upd.execute(["it", 4]).rowcount == 1
        assert company.query("SELECT name FROM dept WHERE id = 4") == [("it",)]

    def test_param_count_mismatch(self, company):
        stmt = company.prepare("SELECT id FROM emp WHERE salary > ?")
        with pytest.raises(SqlError, match="1 parameter"):
            stmt.execute([1, 2])
        with pytest.raises(SqlError, match="1 parameter"):
            stmt.execute([])

    def test_unbound_param_raises(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        # A '?' executed outside the prepared path has no value.
        with pytest.raises(ExecutionError, match="Database.prepare"):
            db.execute("SELECT * FROM t WHERE a = ?")

    def test_prepared_survives_ddl_by_replanning(self, company):
        stmt = company.prepare("SELECT name FROM emp WHERE id = ?")
        assert stmt.query([10]) == [("ada",)]
        company.execute("CREATE INDEX emp_pk_ix ON emp (id)")
        before = plans(company)
        assert stmt.query([10]) == [("ada",)]
        assert plans(company) == before + 1  # replanned exactly once
        assert stmt.query([12]) == [("cyd",)]
        assert plans(company) == before + 1

    def test_prepared_rejects_multiple_statements(self, company):
        with pytest.raises(SqlError):
            company.prepare("SELECT 1; SELECT 2")


class TestObservability:
    def test_metrics_snapshot_exposes_cache_counters(self, company):
        snap = cache_stats(company)
        for key in ("hits", "misses", "invalidations", "evictions",
                    "entries", "generation"):
            assert key in snap

    def test_explain_analyze_reports_cache_line(self, company):
        text = company.execute("EXPLAIN ANALYZE SELECT id FROM emp").plan
        assert "Plan Cache: hits=" in text

    def test_explain_analyze_never_caches_instrumented_plan(self, company):
        sql = "SELECT id FROM emp ORDER BY id"
        company.execute(f"EXPLAIN ANALYZE {sql}")
        # The instrumented tree must not have been stored: running the
        # plain statement afterwards yields untouched counters/rows.
        assert company.query(sql) == [(10,), (11,), (12,), (13,)]
        company.execute(f"EXPLAIN ANALYZE {sql}")
        assert company.query(sql) == [(10,), (11,), (12,), (13,)]


class TestFormsIntegration:
    def test_refresh_hits_the_cache(self, company):
        from repro.forms.generate import generate_form
        from repro.forms.runtime import FormController

        controller = FormController(company, generate_form(company, "dept"))
        before = plans(company)
        for _ in range(5):
            controller.refresh()
        assert plans(company) == before
        assert cache_stats(company)["hits"] >= 5

    def test_qbf_value_change_reuses_statement_shape(self, company):
        from repro.forms.generate import generate_form
        from repro.forms.runtime import FormController

        controller = FormController(company, generate_form(company, "emp"))
        controller.begin_query()
        controller.set_field("dept_id", "1")
        assert controller.execute_query()
        assert len(controller.rows) == 2
        before = plans(company)
        controller.begin_query()
        controller.set_field("dept_id", "2")
        assert controller.execute_query()
        assert len(controller.rows) == 1
        # New criterion value, same '?' shape: no replanning.
        assert plans(company) == before

    def test_qbf_not_equals_spellings(self, company):
        from repro.forms.qbf import parse_criterion
        from repro.relational.types import ColumnType

        a = parse_criterion("x", "!=5", ColumnType.INT)
        b = parse_criterion("x", "<>5", ColumnType.INT)
        assert a.to_sql() == b.to_sql()
