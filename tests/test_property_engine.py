"""Property-based whole-engine tests.

Two families:

* **planner equivalence** — random queries must return identical result
  sets no matter which planner features or join strategies are enabled;
* **model-based DML** — a random interleaving of inserts/updates/deletes
  (with savepoints) must leave the table equal to a plain-dict model.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.relational.database import Database
from repro.relational.planner import PlannerConfig


def _make_db(rows):
    db = Database()
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT, tag TEXT)"
    )
    db.execute("CREATE TABLE g (grp INT PRIMARY KEY, label TEXT)")
    for grp in range(5):
        db.insert("g", {"grp": grp, "label": f"g{grp}"})
    for row_id, (grp, val, tag) in enumerate(rows):
        db.insert(
            "t",
            {
                "id": row_id,
                "grp": grp if grp is not None else None,
                "val": val,
                "tag": tag,
            },
        )
    db.execute("CREATE INDEX it ON t (val)")
    return db


row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(0, 4)),  # grp (FK-ish, nullable)
    st.one_of(st.none(), st.integers(-20, 20)),  # val
    st.sampled_from(["a", "b", "ab", "ba", ""]),  # tag
)

query_strategy = st.sampled_from(
    [
        "SELECT id FROM t WHERE val > 0 ORDER BY id",
        "SELECT id FROM t WHERE val >= -5 AND val <= 5 ORDER BY id",
        "SELECT id FROM t WHERE val = 3 OR tag = 'ab' ORDER BY id",
        "SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp ORDER BY t.id",
        "SELECT t.id FROM t LEFT JOIN g ON t.grp = g.grp WHERE g.label IS NULL ORDER BY t.id",
        "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t GROUP BY grp ORDER BY grp",
        "SELECT DISTINCT tag FROM t ORDER BY tag",
        "SELECT id FROM t WHERE tag LIKE 'a%' ORDER BY id",
        "SELECT id FROM t WHERE grp IN (SELECT grp FROM g WHERE label != 'g0') ORDER BY id",
        "SELECT g.label, COUNT(*) AS n FROM t JOIN g ON t.grp = g.grp "
        "GROUP BY g.label HAVING COUNT(*) > 1 ORDER BY g.label",
    ]
)


class TestPlannerEquivalence:
    @given(rows=st.lists(row_strategy, max_size=30), sql=query_strategy)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_feature_toggles_preserve_results(self, rows, sql):
        db = _make_db(rows)
        reference = db.query(sql)
        configurations = [
            PlannerConfig(enable_pushdown=False),
            PlannerConfig(enable_index_selection=False),
            PlannerConfig(enable_join_reorder=False),
            PlannerConfig(join_strategy="nl"),
            PlannerConfig(join_strategy="merge"),
            PlannerConfig(
                enable_pushdown=False,
                enable_index_selection=False,
                enable_join_reorder=False,
                join_strategy="nl",
            ),
        ]
        for config in configurations:
            db.planner.config = config
            assert sorted(map(repr, db.query(sql))) == sorted(map(repr, reference)), (
                f"config {config} changed results for {sql}"
            )
        db.planner.config = PlannerConfig()

    @given(rows=st.lists(row_strategy, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_order_by_is_sorted(self, rows):
        db = _make_db(rows)
        values = [v for (v,) in db.query("SELECT val FROM t ORDER BY val")]
        from repro.relational.types import sort_key

        assert values == sorted(values, key=sort_key)

    @given(rows=st.lists(row_strategy, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_count_star_matches_len(self, rows):
        db = _make_db(rows)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)

    @given(rows=st.lists(row_strategy, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_where_partition(self, rows):
        """Rows matching P, NOT P, and P-is-NULL partition the table."""
        db = _make_db(rows)
        positive = db.execute("SELECT COUNT(*) FROM t WHERE val > 0").scalar()
        negative = db.execute("SELECT COUNT(*) FROM t WHERE NOT val > 0").scalar()
        nulls = db.execute("SELECT COUNT(*) FROM t WHERE val IS NULL").scalar()
        assert positive + negative + nulls == len(rows)


#: wowlint WOW006 ledger: every Operator subclass with a *native*
#: ``rows_batched`` maps to a SQL statement whose plan contains it.  The
#: linter cross-references these keys against algebra.py; the meta-tests
#: below check the other direction (each SQL really exercises its operator
#: and its batched path matches the tuple path).
BATCHED_OPERATOR_REGISTRY = {
    "SeqScan": "SELECT id, grp, val, tag FROM t",
    "IndexEqScan": "SELECT id FROM t WHERE val = 3",
    "IndexRangeScan": "SELECT id FROM t WHERE val >= -5 AND val <= 5",
    "RowSource": "SELECT 1, 'x'",
    "Rename": "SELECT vid FROM tv",
    "Filter": "SELECT id FROM t WHERE tag = 'a'",
    "Project": "SELECT id FROM t",
    "Sort": "SELECT id FROM t ORDER BY tag",
    "Limit": "SELECT id FROM t LIMIT 5",
    "Distinct": "SELECT DISTINCT tag FROM t",
    "HashJoin": "SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp",
    "UnionAll": "SELECT id FROM t UNION ALL SELECT grp FROM g",
    "Aggregate": "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp",
}


class TestBatchedOperatorRegistry:
    """The registry is honest in both directions: complete and exercising."""

    @staticmethod
    def _plan_for(db, sql):
        from repro.sql.ast_nodes import Union as SqlUnion
        from repro.sql.parser import parse_statement

        statement = parse_statement(sql)
        if isinstance(statement, SqlUnion):
            return db.planner.plan_union(statement)
        return db.planner.plan_select(statement)

    def test_registry_covers_every_native_batched_operator(self):
        import inspect

        import repro.relational.algebra as algebra_mod
        from repro.analysis.rules import native_batched_operators

        source = inspect.getsource(algebra_mod)
        native = {name for name, _line in native_batched_operators(source)}
        assert set(BATCHED_OPERATOR_REGISTRY) == native, (
            "BATCHED_OPERATOR_REGISTRY out of sync with algebra.py: "
            f"missing={sorted(native - set(BATCHED_OPERATOR_REGISTRY))} "
            f"extra={sorted(set(BATCHED_OPERATOR_REGISTRY) - native)}"
        )

    def test_each_registered_sql_exercises_its_operator(self):
        from repro.analysis.planverify import iter_operators, verify_plan

        db = _make_db([(1, 3, "a"), (2, -1, "b"), (None, 5, "ab"), (0, None, "")])
        db.execute("CREATE VIEW tv AS SELECT id AS vid FROM t WHERE val > 0")
        for op_name, sql in BATCHED_OPERATOR_REGISTRY.items():
            plan = self._plan_for(db, sql)
            kinds = {type(op).__name__ for op in iter_operators(plan)}
            assert op_name in kinds, (
                f"{sql!r} no longer exercises {op_name}; its plan contains {sorted(kinds)}"
            )
            verify_plan(plan)
            reference = list(plan.rows())
            flattened = [row for batch in plan.rows_batched(batch_size=2) for row in batch]
            assert flattened == reference, f"batched path diverged for {op_name}"


batched_query_strategy = st.sampled_from(
    [
        # Plain scans and filters (NULL-heavy columns flow through batches).
        "SELECT id, grp, val, tag FROM t ORDER BY id",
        "SELECT id FROM t WHERE val IS NULL ORDER BY id",
        "SELECT id FROM t WHERE val > 0 ORDER BY id",
        # LIMIT/OFFSET chosen to straddle the small batch sizes below.
        "SELECT id FROM t ORDER BY id LIMIT 5",
        "SELECT id FROM t ORDER BY id LIMIT 5 OFFSET 3",
        "SELECT id FROM t ORDER BY id LIMIT 0",
        # DISTINCT must dedupe across batch boundaries.
        "SELECT DISTINCT grp FROM t ORDER BY grp",
        "SELECT DISTINCT tag FROM t ORDER BY tag",
        # Joins, grouping, and index scans get their native batched paths.
        "SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp ORDER BY t.id",
        "SELECT t.id FROM t LEFT JOIN g ON t.grp = g.grp ORDER BY t.id",
        "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t GROUP BY grp ORDER BY grp",
        "SELECT id FROM t WHERE val = 3 ORDER BY id",
        "SELECT id FROM t WHERE val >= -5 AND val <= 5 ORDER BY id",
    ]
)


class TestBatchedEquivalence:
    """rows_batched() is transport, not semantics: identical rows, same order."""

    @given(
        rows=st.lists(row_strategy, max_size=30),
        sql=batched_query_strategy,
        batch_size=st.sampled_from([1, 2, 3, 7, 1024]),
    )
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_rows_batched_matches_rows(self, rows, sql, batch_size):
        from repro.sql.parser import parse_statement

        db = _make_db(rows)
        plan = db.planner.plan_select(parse_statement(sql))
        reference = list(plan.rows())
        batches = list(plan.rows_batched(batch_size=batch_size))
        assert all(batches), f"empty batch emitted for {sql}"
        assert [row for batch in batches for row in batch] == reference, (
            f"batched execution (batch_size={batch_size}) diverged for {sql}"
        )

    @given(rows=st.lists(row_strategy, max_size=30), sql=batched_query_strategy)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_vectorized_flag_preserves_results(self, rows, sql):
        """End-to-end: the A/B config flag must not change any result."""
        db = _make_db(rows)
        db.set_planner_config(PlannerConfig(vectorized=False))
        reference = db.query(sql)
        db.set_planner_config(PlannerConfig(vectorized=True))
        assert db.query(sql) == reference, f"vectorized flag changed results for {sql}"

    def test_empty_table_yields_no_batches(self):
        from repro.sql.parser import parse_statement

        db = _make_db([])
        for sql in (
            "SELECT id FROM t",
            "SELECT DISTINCT tag FROM t",
            "SELECT id FROM t ORDER BY id LIMIT 5",
        ):
            plan = db.planner.plan_select(parse_statement(sql))
            assert list(plan.rows_batched()) == []


op_strategy = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 30), st.integers(-5, 5)),
    st.tuples(st.just("delete"), st.integers(0, 30), st.just(0)),
    st.tuples(st.just("update"), st.integers(0, 30), st.integers(-5, 5)),
    st.tuples(st.just("savepoint"), st.just(0), st.just(0)),
    st.tuples(st.just("rollback_sp"), st.just(0), st.just(0)),
)


class TestModelBasedDml:
    @given(ops=st.lists(op_strategy, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_engine_matches_dict_model(self, ops):
        db = Database()
        db.execute("CREATE TABLE m (k INT PRIMARY KEY, v INT)")
        model = {}
        db.execute("BEGIN")
        saved_model = None
        have_savepoint = False
        for op, key, value in ops:
            if op == "insert":
                if key in model:
                    continue
                db.insert("m", {"k": key, "v": value})
                model[key] = value
            elif op == "delete":
                if key not in model:
                    continue
                db.delete("m", f"k = {key}")
                del model[key]
            elif op == "update":
                if key not in model:
                    continue
                db.update("m", {"v": value}, f"k = {key}")
                model[key] = value
            elif op == "savepoint":
                db.execute("SAVEPOINT sp")
                saved_model = dict(model)
                have_savepoint = True
            elif op == "rollback_sp" and have_savepoint:
                db.execute("ROLLBACK TO sp")
                model = dict(saved_model)
        db.execute("COMMIT")
        assert dict(db.query("SELECT k, v FROM m")) == model

    @given(ops=st.lists(op_strategy, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_full_rollback_restores_initial_state(self, ops):
        db = Database()
        db.execute("CREATE TABLE m (k INT PRIMARY KEY, v INT)")
        for key in range(5):
            db.insert("m", {"k": key, "v": key})
        before = db.query("SELECT k, v FROM m ORDER BY k")
        db.execute("BEGIN")
        model_keys = {k for k in range(5)}
        for op, key, value in ops:
            try:
                if op == "insert" and key not in model_keys:
                    db.insert("m", {"k": key, "v": value})
                    model_keys.add(key)
                elif op == "delete" and key in model_keys:
                    db.delete("m", f"k = {key}")
                    model_keys.discard(key)
                elif op == "update" and key in model_keys:
                    db.update("m", {"v": value}, f"k = {key}")
            except Exception:
                pass
        db.execute("ROLLBACK")
        assert db.query("SELECT k, v FROM m ORDER BY k") == before


class TestPersistencePropertyLite:
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 1000), st.text(max_size=20)),
            max_size=30,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_crash_recovery_preserves_rows(self, rows, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("pdb"))
        db = Database(path=path, fsync=False)
        db.execute("CREATE TABLE r (k INT PRIMARY KEY, s TEXT)")
        for key, text in rows:
            db.insert("r", {"k": key, "s": text})
        # Crash (no close); reopen and compare.
        db2 = Database(path=path, fsync=False)
        assert sorted(db2.query("SELECT k, s FROM r")) == sorted(rows)
        db2.close()
