"""Unit tests for the value/type system (coercion, 3VL, ordering)."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeMismatchError
from repro.relational.types import (
    ColumnType,
    and_,
    coerce,
    compare,
    format_value,
    infer_type,
    is_valid,
    not_,
    or_,
    parse_input,
    sort_key,
)


class TestColumnType:
    def test_from_name_canonical(self):
        assert ColumnType.from_name("INT") is ColumnType.INT
        assert ColumnType.from_name("text") is ColumnType.TEXT

    @pytest.mark.parametrize(
        "synonym,expected",
        [
            ("INTEGER", ColumnType.INT),
            ("BIGINT", ColumnType.INT),
            ("REAL", ColumnType.FLOAT),
            ("DOUBLE", ColumnType.FLOAT),
            ("VARCHAR", ColumnType.TEXT),
            ("STRING", ColumnType.TEXT),
            ("BOOLEAN", ColumnType.BOOL),
            ("date", ColumnType.DATE),
        ],
    )
    def test_synonyms(self, synonym, expected):
        assert ColumnType.from_name(synonym) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.from_name("BLOB")


class TestCoerce:
    def test_null_passes_every_type(self):
        for ctype in ColumnType:
            assert coerce(None, ctype) is None

    def test_int_accepts_integral_float(self):
        assert coerce(3.0, ColumnType.INT) == 3
        assert isinstance(coerce(3.0, ColumnType.INT), int)

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce(3.5, ColumnType.INT)

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce(True, ColumnType.INT)

    def test_float_upcasts_int(self):
        value = coerce(7, ColumnType.FLOAT)
        assert value == 7.0 and isinstance(value, float)

    def test_text_rejects_numbers(self):
        with pytest.raises(TypeMismatchError):
            coerce(42, ColumnType.TEXT)

    def test_bool_accepts_zero_one(self):
        assert coerce(1, ColumnType.BOOL) is True
        assert coerce(0, ColumnType.BOOL) is False

    def test_bool_rejects_other_ints(self):
        with pytest.raises(TypeMismatchError):
            coerce(2, ColumnType.BOOL)

    def test_date_from_iso_string(self):
        assert coerce("2020-02-29", ColumnType.DATE) == datetime.date(2020, 2, 29)

    def test_date_rejects_bad_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("02/29/2020", ColumnType.DATE)

    def test_date_rejects_datetime(self):
        with pytest.raises(TypeMismatchError):
            coerce(datetime.datetime(2020, 1, 1, 12), ColumnType.DATE)


class TestIsValidAndInfer:
    def test_is_valid_rejects_bool_as_int(self):
        assert not is_valid(True, ColumnType.INT)

    def test_is_valid_accepts_stored_forms(self):
        assert is_valid(3, ColumnType.INT)
        assert is_valid(3.5, ColumnType.FLOAT)
        assert is_valid("x", ColumnType.TEXT)
        assert is_valid(datetime.date(2020, 1, 1), ColumnType.DATE)

    def test_infer_type_bool_before_int(self):
        assert infer_type(True) is ColumnType.BOOL
        assert infer_type(1) is ColumnType.INT

    def test_infer_type_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, 2])


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert and_(True, True) is True
        assert and_(True, False) is False
        assert and_(False, None) is False  # False dominates
        assert and_(True, None) is None
        assert and_(None, None) is None

    def test_or_truth_table(self):
        assert or_(False, False) is False
        assert or_(True, None) is True  # True dominates
        assert or_(False, None) is None
        assert or_(None, None) is None

    def test_not(self):
        assert not_(True) is False
        assert not_(False) is True
        assert not_(None) is None

    def test_compare_null_is_unknown(self):
        assert compare(None, 1) is None
        assert compare(1, None) is None

    def test_compare_numbers_cross_type(self):
        assert compare(1, 1.0) == 0
        assert compare(1, 2.5) == -1

    def test_compare_rejects_mixed_types(self):
        with pytest.raises(TypeMismatchError):
            compare(1, "1")
        with pytest.raises(TypeMismatchError):
            compare(True, 1)


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, None, 1, 2, 3]

    def test_equal_nulls(self):
        assert sort_key(None) == sort_key(None)
        assert not (sort_key(None) < sort_key(None))

    @given(st.lists(st.one_of(st.none(), st.integers()), max_size=30))
    def test_sort_is_total_on_nullable_ints(self, values):
        ordered = sorted(values, key=sort_key)
        nulls = [v for v in ordered if v is None]
        rest = [v for v in ordered if v is not None]
        assert ordered == nulls + sorted(rest)


class TestFormatAndParse:
    def test_format_null_is_empty(self):
        assert format_value(None) == ""

    def test_format_bool(self):
        assert format_value(True) == "true"

    def test_format_date(self):
        assert format_value(datetime.date(2021, 5, 6)) == "2021-05-06"

    def test_parse_empty_is_null(self):
        assert parse_input("  ", ColumnType.INT) is None

    def test_parse_int(self):
        assert parse_input("42", ColumnType.INT) == 42

    def test_parse_bad_int_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_input("4x", ColumnType.INT)

    @pytest.mark.parametrize("text,expected", [("yes", True), ("0", False), ("T", True)])
    def test_parse_bool_spellings(self, text, expected):
        assert parse_input(text, ColumnType.BOOL) is expected

    def test_parse_date(self):
        assert parse_input("2022-12-31", ColumnType.DATE) == datetime.date(2022, 12, 31)

    @given(st.integers(min_value=-10**12, max_value=10**12))
    def test_int_roundtrip_through_text(self, n):
        assert parse_input(format_value(n), ColumnType.INT) == n
