"""Tests for the storage stack: row codec, pagers, slotted-page heap."""

import datetime
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.relational.heap import MAX_RECORD_SIZE, HeapFile, RowId
from repro.relational.pager import PAGE_SIZE, FilePager, MemoryPager
from repro.relational.rowcodec import decode_row, encode_row, read_varint, write_varint
from repro.relational.schema import Column, TableSchema
from repro.relational.types import ColumnType

SCHEMA = TableSchema(
    "t",
    [
        Column("i", ColumnType.INT),
        Column("f", ColumnType.FLOAT),
        Column("s", ColumnType.TEXT),
        Column("b", ColumnType.BOOL),
        Column("d", ColumnType.DATE),
    ],
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_roundtrip(self, value):
        buf = bytearray()
        write_varint(buf, value)
        decoded, pos = read_varint(bytes(buf), 0)
        assert decoded == value and pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            write_varint(bytearray(), -1)

    def test_truncated_raises(self):
        buf = bytearray()
        write_varint(buf, 300)
        with pytest.raises(StorageError):
            read_varint(bytes(buf[:-1]) + b"\x80", 1)


class TestRowCodec:
    def test_roundtrip_all_types(self):
        row = (42, 3.5, "héllo", True, datetime.date(1983, 5, 23))
        assert decode_row(SCHEMA, encode_row(SCHEMA, row)) == row

    def test_roundtrip_all_nulls(self):
        row = (None,) * 5
        assert decode_row(SCHEMA, encode_row(SCHEMA, row)) == row

    def test_negative_int(self):
        row = (-12345, None, None, None, None)
        assert decode_row(SCHEMA, encode_row(SCHEMA, row)) == row

    def test_empty_string(self):
        row = (None, None, "", False, None)
        assert decode_row(SCHEMA, encode_row(SCHEMA, row)) == row

    def test_arity_mismatch_raises(self):
        with pytest.raises(StorageError):
            encode_row(SCHEMA, (1, 2.0))

    def test_trailing_garbage_raises(self):
        data = encode_row(SCHEMA, (1, 1.0, "x", True, None))
        with pytest.raises(StorageError):
            decode_row(SCHEMA, data + b"\x00")

    def test_truncation_raises(self):
        data = encode_row(SCHEMA, (1, 1.0, "xyz", True, None))
        with pytest.raises(StorageError):
            decode_row(SCHEMA, data[:-2])

    @given(
        st.tuples(
            st.one_of(st.none(), st.integers(min_value=-2**62, max_value=2**62)),
            st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
            st.one_of(st.none(), st.text(max_size=200)),
            st.one_of(st.none(), st.booleans()),
            st.one_of(
                st.none(),
                st.dates(
                    min_value=datetime.date(1, 1, 1),
                    max_value=datetime.date(9999, 12, 31),
                ),
            ),
        )
    )
    @settings(max_examples=200)
    def test_roundtrip_property(self, row):
        assert decode_row(SCHEMA, encode_row(SCHEMA, row)) == row


class TestMemoryPager:
    def test_allocate_and_read(self):
        pager = MemoryPager()
        n = pager.allocate_page()
        assert n == 0
        page = pager.read_page(0)
        assert len(page) == PAGE_SIZE
        page[0] = 0xAB
        assert pager.read_page(0)[0] == 0xAB  # same object

    def test_missing_page_raises(self):
        with pytest.raises(StorageError):
            MemoryPager().read_page(0)

    def test_mark_dirty_counts_once_per_flush_interval(self):
        pager = MemoryPager()
        n = pager.allocate_page()
        writes = pager.stats["writes"]
        for _ in range(10):
            pager.mark_dirty(n)  # same page: one logical write, not ten
        assert pager.stats["writes"] == writes + 1
        pager.flush()
        pager.mark_dirty(n)  # new interval: counts again
        assert pager.stats["writes"] == writes + 2


class TestFilePager:
    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.pg")
        pager = FilePager(path)
        n = pager.allocate_page()
        page = pager.read_page(n)
        page[:4] = b"WOW!"
        pager.mark_dirty(n)
        pager.close()
        reopened = FilePager(path)
        assert bytes(reopened.read_page(n)[:4]) == b"WOW!"
        reopened.close()

    def test_torn_file_detected(self, tmp_path):
        path = str(tmp_path / "torn.pg")
        with open(path, "wb") as fh:
            fh.write(b"\0" * (PAGE_SIZE + 10))
        with pytest.raises(StorageError):
            FilePager(path)

    def test_no_steal_eviction(self, tmp_path):
        """Dirty pages are never written back by eviction pressure."""
        path = str(tmp_path / "dirty.pg")
        pager = FilePager(path, pool_size=2)
        pages = [pager.allocate_page() for _ in range(4)]
        for n in pages:
            page = pager.read_page(n)
            page[0] = n + 1
            pager.mark_dirty(n)
        # File on disk must still be empty: nothing flushed yet.
        assert os.path.getsize(path) == 0 or all(
            b == 0 for b in open(path, "rb").read()
        )
        pager.flush()
        with open(path, "rb") as fh:
            data = fh.read()
        assert data[0] == 1 and data[PAGE_SIZE] == 2
        pager.close()

    def test_mark_dirty_nonresident_raises(self, tmp_path):
        pager = FilePager(str(tmp_path / "x.pg"))
        with pytest.raises(StorageError):
            pager.mark_dirty(0)
        pager.close()

    def test_closed_pager_raises(self, tmp_path):
        pager = FilePager(str(tmp_path / "y.pg"))
        pager.close()
        with pytest.raises(StorageError):
            pager.allocate_page()

    def test_eviction_stats(self, tmp_path):
        pager = FilePager(str(tmp_path / "z.pg"), pool_size=2)
        for _ in range(5):
            pager.allocate_page()
        pager.flush()
        for n in range(5):
            pager.read_page(n)
        assert pager.stats["evictions"] > 0
        pager.close()

    def test_clean_flush_does_not_fsync(self, tmp_path):
        """flush() on a clean pool is a no-op: no write-back, no fsync."""
        pager = FilePager(str(tmp_path / "c.pg"))
        n = pager.allocate_page()
        pager.read_page(n)[0] = 1
        pager.mark_dirty(n)
        pager.flush()
        writes, fsyncs = pager.stats["writes"], pager.stats["fsyncs"]
        for _ in range(3):
            pager.flush()  # nothing dirty -> counters must not move
        assert pager.stats["writes"] == writes
        assert pager.stats["fsyncs"] == fsyncs
        pager.close()


class TestHeapFile:
    def test_insert_read_delete(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert(b"hello")
        assert heap.read(rid) == b"hello"
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_double_delete_raises(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert(b"x")
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.delete(rid)

    def test_update_in_place_keeps_rid(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert(b"longish-record")
        new_rid = heap.update(rid, b"short")
        assert new_rid == rid
        assert heap.read(rid) == b"short"

    def test_update_grow_within_page(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert(b"a")
        new_rid = heap.update(rid, b"b" * 100)
        assert heap.read(new_rid) == b"b" * 100

    def test_update_relocates_when_page_full(self):
        heap = HeapFile(MemoryPager())
        big = b"x" * 1300
        rids = [heap.insert(big) for _ in range(3)]  # fills most of page 0
        moved = heap.update(rids[0], b"y" * 3000)
        assert heap.read(moved) == b"y" * 3000
        assert moved.page != rids[0].page
        # Other records untouched.
        assert heap.read(rids[1]) == big

    def test_slot_reuse_after_delete(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert(b"dead")
        heap.delete(rid)
        new_rid = heap.insert(b"live")
        assert new_rid.page == rid.page and new_rid.slot == rid.slot

    def test_scan_order_and_count(self):
        heap = HeapFile(MemoryPager())
        records = [f"record-{i}".encode() for i in range(500)]
        for record in records:
            heap.insert(record)
        scanned = [record for _rid, record in heap.scan()]
        assert scanned == records
        assert heap.count() == 500

    def test_count_tracks_mutations(self):
        heap = HeapFile(MemoryPager())
        rids = [heap.insert(b"r%d" % i) for i in range(10)]
        assert heap.count() == 10
        heap.delete(rids[0])
        assert heap.count() == 9
        heap.insert(b"new")
        assert heap.count() == 10

    def test_count_survives_relocating_updates(self):
        """A relocation is a move, not a delete+insert, for the live count.

        Regression: the relocation path used to go through delete()+insert(),
        decrementing the cached count once per move without a matching
        increment, so interleaving grow-updates with count() drifted low.
        """
        heap = HeapFile(MemoryPager())
        rids = [heap.insert(b"x" * 1300) for _ in range(3)]  # fills page 0
        assert heap.count() == 3  # prime the cached count
        for step in range(1, 6):
            # Each grow forces the record off its (full) original page.
            rids[0] = heap.update(rids[0], bytes([step]) * (1300 + step * 300))
            assert heap.count() == 3
            assert sum(1 for _ in heap.scan()) == 3
        # The moved record is intact and the others untouched.
        assert heap.read(rids[0]) == bytes([5]) * (1300 + 5 * 300)
        assert heap.read(rids[1]) == b"x" * 1300

    def test_scan_pages_matches_scan(self):
        """scan_pages() is the batch transport for exactly scan()'s records."""
        heap = HeapFile(MemoryPager())
        rids = [heap.insert(f"record-{i}".encode() * (1 + i % 7)) for i in range(200)]
        for rid in rids[::3]:
            heap.delete(rid)
        flat = [
            (RowId(page_no, slot_no), bytes(data[offset : offset + length]))
            for page_no, data, live in heap.scan_pages()
            for slot_no, offset, length in live
        ]
        assert flat == [(rid, bytes(record)) for rid, record in heap.scan()]

    def test_oversize_record_rejected(self):
        heap = HeapFile(MemoryPager())
        with pytest.raises(StorageError):
            heap.insert(b"x" * (MAX_RECORD_SIZE + 1))
        rid = heap.insert(b"ok")
        with pytest.raises(StorageError):
            heap.update(rid, b"x" * (MAX_RECORD_SIZE + 1))

    def test_max_size_record_fits(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert(b"m" * MAX_RECORD_SIZE)
        assert len(heap.read(rid)) == MAX_RECORD_SIZE

    def test_compaction_reclaims_fragmentation(self):
        heap = HeapFile(MemoryPager())
        rids = [heap.insert(b"z" * 400) for _ in range(9)]  # page nearly full
        for rid in rids[::2]:
            heap.delete(rid)
        # This record only fits page 0 after compaction of the holes.
        big = heap.insert(b"w" * 1500)
        assert big.page == 0

    def test_persistent_heap_roundtrip(self, tmp_path):
        path = str(tmp_path / "h.heap")
        pager = FilePager(path)
        heap = HeapFile(pager)
        rids = [heap.insert(f"row{i}".encode()) for i in range(100)]
        heap.delete(rids[50])
        pager.flush()
        pager.close()
        reopened = HeapFile(FilePager(path))
        assert reopened.count() == 99
        assert reopened.read(rids[0]) == b"row0"

    @given(st.lists(st.binary(min_size=0, max_size=600), min_size=1, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_heap_matches_dict_model(self, records):
        """Heap behaves like a dict rid->record under inserts/updates/deletes."""
        heap = HeapFile(MemoryPager())
        model = {}
        for i, record in enumerate(records):
            action = i % 3
            if action == 0 or not model:
                rid = heap.insert(record)
                assert rid not in model
                model[rid] = record
            elif action == 1:
                victim = next(iter(model))
                heap.delete(victim)
                del model[victim]
            else:
                victim = next(iter(model))
                new_rid = heap.update(victim, record)
                del model[victim]
                model[new_rid] = record
        assert dict(heap.scan()) == model
