"""Tests for the forms core: specs, generation, QBF, and the runtime."""

import pytest

from repro.errors import FieldValidationError, FormModeError, FormSpecError
from repro.forms import FormController, Mode, generate_form, parse_criterion
from repro.forms.generate import generate_form_with_stats
from repro.forms.qbf import build_predicate
from repro.forms.spec import FieldSpec, FormSpec
from repro.relational.types import ColumnType
from repro.windows.events import Key, KeyEvent


class TestSpec:
    def test_duplicate_column_rejected(self):
        with pytest.raises(FormSpecError):
            FormSpec(
                "f",
                "t",
                "T",
                fields=[
                    FieldSpec("a", "A", ColumnType.INT, 5, 0),
                    FieldSpec("a", "A2", ColumnType.INT, 5, 1),
                ],
            )

    def test_layout_metrics(self):
        spec = FormSpec(
            "f",
            "t",
            "T",
            fields=[
                FieldSpec("a", "A", ColumnType.INT, 5, 0),
                FieldSpec("b", "Blong", ColumnType.TEXT, 10, 2),
            ],
        )
        assert spec.layout_rows == 3
        assert spec.label_width == 5
        assert spec.columns == ["a", "b"]

    def test_bad_field_geometry(self):
        with pytest.raises(FormSpecError):
            FieldSpec("a", "A", ColumnType.INT, 0, 0)
        with pytest.raises(FormSpecError):
            FieldSpec("a", "A", ColumnType.INT, 5, -1)

    def test_field_for_unknown(self):
        spec = FormSpec("f", "t", "T", fields=[FieldSpec("a", "A", ColumnType.INT, 5, 0)])
        with pytest.raises(FormSpecError):
            spec.field_for("zzz")


class TestGeneration:
    def test_table_form_has_all_columns(self, company):
        spec, stats = generate_form_with_stats(company, "emp")
        assert spec.columns == ["id", "name", "dept_id", "salary", "hired"]
        assert stats.fields == 5 and stats.layout_rows == 5

    def test_key_fields_flagged(self, company):
        spec = generate_form(company, "emp")
        assert spec.field_for("id").in_key
        assert not spec.field_for("name").in_key

    def test_fk_pick_list_inferred(self, company):
        spec = generate_form(company, "emp")
        pick = spec.field_for("dept_id").pick_list
        assert pick is not None
        assert pick.parent_table == "dept" and pick.key_column == "id"
        assert pick.label_column == "name"

    def test_updatable_view_keeps_keys_and_picks(self, company):
        spec, stats = generate_form_with_stats(company, "eng_emps")
        assert spec.field_for("id").in_key
        assert not stats.read_only

    def test_join_view_becomes_read_only(self, company):
        company.execute(
            "CREATE VIEW j AS SELECT e.name AS who, d.name AS dept "
            "FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        spec, stats = generate_form_with_stats(company, "j")
        assert stats.read_only
        assert all(f.read_only for f in spec.fields)

    def test_order_by_defaults_to_key(self, company):
        assert generate_form(company, "emp").order_by == ["id"]

    def test_widths_follow_types(self, company):
        spec = generate_form(company, "emp")
        assert spec.field_for("salary").width == 12
        assert spec.field_for("hired").width == 10


class TestQbf:
    def test_empty_is_none(self):
        assert parse_criterion("a", "  ", ColumnType.INT) is None

    def test_equality(self):
        expr = parse_criterion("a", "5", ColumnType.INT)
        assert expr.to_sql() == "(a = 5)"

    @pytest.mark.parametrize("text,op", [(">5", ">"), (">=5", ">="), ("<5", "<"), ("<=5", "<="), ("!=5", "!=")])
    def test_comparisons(self, text, op):
        expr = parse_criterion("a", text, ColumnType.INT)
        assert expr.op == op

    def test_explicit_equals(self):
        assert parse_criterion("a", "=7", ColumnType.INT).op == "="

    def test_like_from_wildcards(self):
        expr = parse_criterion("name", "sm%", ColumnType.TEXT)
        assert "LIKE" in expr.to_sql()

    def test_null_tests(self):
        assert "IS NULL" in parse_criterion("a", "~", ColumnType.INT).to_sql()
        assert "IS NOT NULL" in parse_criterion("a", "!~", ColumnType.INT).to_sql()

    def test_range(self):
        expr = parse_criterion("a", "1..9", ColumnType.INT)
        text = expr.to_sql()
        assert ">=" in text and "<=" in text

    def test_typed_parsing(self):
        expr = parse_criterion("d", ">1983-01-01", ColumnType.DATE)
        import datetime

        assert expr.right.value == datetime.date(1983, 1, 1)

    def test_bad_value_raises(self):
        with pytest.raises(FieldValidationError):
            parse_criterion("a", ">abc", ColumnType.INT)
        with pytest.raises(FieldValidationError):
            parse_criterion("a", ">", ColumnType.INT)

    def test_build_predicate_conjunction(self):
        predicate = build_predicate(
            [
                ("a", ">1", ColumnType.INT),
                ("b", "", ColumnType.TEXT),
                ("c", "x%", ColumnType.TEXT),
            ]
        )
        from repro.relational.expr import split_conjuncts

        assert len(split_conjuncts(predicate)) == 2

    def test_build_predicate_all_empty(self):
        assert build_predicate([("a", "", ColumnType.INT)]) is None


@pytest.fixture
def controller(company):
    return FormController(company, generate_form(company, "emp"))


class TestControllerBrowse:
    def test_initial_state(self, controller):
        assert controller.mode is Mode.BROWSE
        assert controller.record_count == 4
        assert controller.field_texts["name"] == "ada"

    def test_navigation(self, controller):
        controller.next_record()
        assert controller.field_texts["name"] == "bob"
        controller.last_record()
        assert controller.field_texts["name"] == "dan"
        controller.prev_record()
        assert controller.field_texts["name"] == "cyd"
        controller.first_record()
        assert controller.field_texts["id"] == "10"

    def test_navigation_clamps(self, controller):
        controller.prev_record()
        assert controller.position == 0
        controller.last_record()
        controller.next_record()
        assert controller.position == 3

    def test_nulls_render_empty(self, controller):
        controller.last_record()  # dan has NULL dept_id
        assert controller.field_texts["dept_id"] == ""

    def test_keys_drive_navigation(self, controller):
        controller.handle_key(KeyEvent(Key.DOWN))
        assert controller.position == 1
        controller.handle_key(KeyEvent(Key.END))
        assert controller.position == 3
        controller.handle_key(KeyEvent(Key.HOME))
        assert controller.position == 0

    def test_status_line(self, controller):
        assert controller.status_line().startswith("BROWSE 1/4")

    def test_navigation_requires_browse(self, controller):
        controller.begin_edit()
        with pytest.raises(FormModeError):
            controller.next_record()


class TestControllerEdit:
    def test_edit_and_save(self, controller, company):
        controller.begin_edit()
        controller.set_field("salary", "123.5")
        assert controller.save()
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 123.5
        assert controller.mode is Mode.BROWSE
        assert controller.position == 0  # stayed on the record

    def test_key_fields_not_editable_in_edit(self, controller):
        controller.begin_edit()
        assert not controller.editable("id")
        assert controller.editable("salary")

    def test_nothing_editable_in_browse(self, controller):
        assert not controller.editable("salary")

    def test_bad_input_keeps_mode(self, controller):
        controller.begin_edit()
        controller.set_field("salary", "not-a-number")
        assert not controller.save()
        assert controller.mode is Mode.EDIT
        assert "error" in controller.message

    def test_constraint_error_reported(self, controller):
        controller.begin_edit()
        controller.set_field("name", "")  # NOT NULL
        assert not controller.save()
        assert "error" in controller.message

    def test_cancel_restores(self, controller):
        controller.begin_edit()
        controller.set_field("salary", "999")
        controller.cancel()
        assert controller.mode is Mode.BROWSE
        assert controller.field_texts["salary"] == "100"

    def test_edit_from_edit_rejected(self, controller):
        controller.begin_edit()
        with pytest.raises(FormModeError):
            controller.begin_edit()


class TestControllerInsertDelete:
    def test_insert(self, controller, company):
        controller.begin_insert()
        assert controller.field_texts["name"] == ""
        controller.set_field("id", "77")
        controller.set_field("name", "new guy")
        controller.set_field("salary", "50")
        assert controller.save()
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        # Jumped to the new record.
        assert controller.field_texts["name"] == "new guy"

    def test_insert_error_stays_in_insert(self, controller):
        controller.begin_insert()
        controller.set_field("id", "10")  # duplicate PK
        controller.set_field("name", "dup")
        assert not controller.save()
        assert controller.mode is Mode.INSERT

    def test_delete(self, controller, company):
        controller.last_record()
        assert controller.delete_record()
        assert company.execute("SELECT COUNT(*) FROM emp").scalar() == 3
        assert controller.record_count == 3

    def test_delete_respects_fk(self, company):
        controller = FormController(company, generate_form(company, "dept"))
        assert not controller.delete_record()  # dept 1 has employees
        assert "error" in controller.message

    def test_save_in_browse_rejected(self, controller):
        with pytest.raises(FormModeError):
            controller.save()


class TestControllerQuery:
    def test_query_filters(self, controller):
        controller.begin_query()
        controller.set_field("salary", ">95")
        assert controller.execute_query()
        assert controller.record_count == 2
        assert controller.query_filter is not None
        assert "[filtered]" in controller.status_line()

    def test_query_like(self, controller):
        controller.begin_query()
        controller.set_field("name", "%a%")
        controller.execute_query()
        assert controller.record_count == 2  # 'ada' and 'dan' contain 'a'

    def test_query_null_criterion(self, controller):
        controller.begin_query()
        controller.set_field("dept_id", "~")
        controller.execute_query()
        assert controller.record_count == 1
        assert controller.field_texts["name"] == "dan"

    def test_esc_clears_filter(self, controller):
        controller.begin_query()
        controller.set_field("salary", ">95")
        controller.execute_query()
        controller.cancel()  # BROWSE + filter set -> clears
        assert controller.query_filter is None
        assert controller.record_count == 4

    def test_bad_criterion_reports(self, controller):
        controller.begin_query()
        controller.set_field("salary", ">oops")
        assert not controller.execute_query()
        assert controller.mode is Mode.QUERY

    def test_multi_field_criteria_and(self, controller):
        controller.begin_query()
        controller.set_field("dept_id", "1")
        controller.set_field("salary", ">110")
        controller.execute_query()
        assert controller.record_count == 1
        assert controller.field_texts["name"] == "cyd"


class TestControllerOnViews:
    def test_form_on_view_updates_base(self, company):
        controller = FormController(company, generate_form(company, "eng_emps"))
        assert controller.record_count == 2
        controller.begin_edit()
        controller.set_field("salary", "155")
        assert controller.save()
        assert company.execute("SELECT salary FROM emp WHERE id = 10").scalar() == 155.0

    def test_form_on_view_insert_autofills(self, company):
        controller = FormController(company, generate_form(company, "eng_emps"))
        controller.begin_insert()
        controller.set_field("id", "88")
        controller.set_field("name", "viv")
        controller.set_field("salary", "70")
        assert controller.save()
        assert company.query("SELECT dept_id FROM emp WHERE id = 88") == [(1,)]

    def test_pick_values(self, company):
        controller = FormController(company, generate_form(company, "emp"))
        picks = controller.pick_values("dept_id")
        assert picks == [(1, "eng"), (2, "sales"), (3, "hr")]
        assert controller.pick_values("name") == []


class TestMetricsHelpers:
    def test_keystroke_meter_tasks(self):
        from repro.metrics import KeystrokeMeter

        meter = KeystrokeMeter()
        meter.start_task("t1")
        meter.record(3)
        assert meter.end_task() == 3
        meter.record(2)
        assert meter.total == 5
        assert meter.by_task == {"t1": 3}

    def test_terminal_cost_model(self):
        from repro.metrics import TerminalCostModel

        model = TerminalCostModel(seconds_per_keystroke=0.5, seconds_per_cell=0.001)
        assert model.cost(10, 1000) == pytest.approx(6.0)
