"""Tests for the B+-tree and the index layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstraintError, SchemaError
from repro.relational.btree import BPlusTree
from repro.relational.heap import RowId
from repro.relational.indexes import BTreeIndex, HashIndex, make_index


class TestBPlusTree:
    def test_insert_get(self):
        tree = BPlusTree(branching=4)
        for i in range(100):
            tree.insert(i, i * 10)
        assert tree.get(42) == 420
        assert tree.get(1000) is None
        assert tree.get(1000, "missing") == "missing"
        assert len(tree) == 100

    def test_overwrite_same_key(self):
        tree = BPlusTree(branching=4)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.get("k") == 2
        assert len(tree) == 1

    def test_items_sorted(self):
        tree = BPlusTree(branching=4)
        import random

        keys = list(range(500))
        random.Random(7).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _v in tree.items()] == list(range(500))

    def test_depth_grows(self):
        tree = BPlusTree(branching=4)
        assert tree.depth() == 1
        for i in range(200):
            tree.insert(i, i)
        assert tree.depth() >= 3

    def test_delete(self):
        tree = BPlusTree(branching=4)
        for i in range(50):
            tree.insert(i, i)
        assert tree.delete(25) is True
        assert tree.delete(25) is False
        assert tree.get(25) is None
        assert len(tree) == 49

    def test_range_inclusive_exclusive(self):
        tree = BPlusTree(branching=4)
        for i in range(20):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(5, 8)] == [5, 6, 7, 8]
        assert [k for k, _ in tree.range(5, 8, include_low=False)] == [6, 7, 8]
        assert [k for k, _ in tree.range(5, 8, include_high=False)] == [5, 6, 7]
        assert [k for k, _ in tree.range(None, 2)] == [0, 1, 2]
        assert [k for k, _ in tree.range(17, None)] == [17, 18, 19]
        assert [k for k, _ in tree.range()] == list(range(20))

    def test_range_empty_window(self):
        tree = BPlusTree(branching=4)
        for i in range(0, 20, 2):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(3, 3)] == []

    def test_min_key(self):
        tree = BPlusTree(branching=4)
        assert tree.min_key() is None
        tree.insert(9, 1)
        tree.insert(3, 1)
        assert tree.min_key() == 3

    def test_branching_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(branching=2)

    @given(st.sets(st.integers(min_value=-10**6, max_value=10**6), max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_matches_sorted_dict(self, keys):
        tree = BPlusTree(branching=4)
        for key in keys:
            tree.insert(key, -key)
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert all(tree.get(k) == -k for k in keys)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["add", "del"]), st.integers(0, 50)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mixed_ops_model(self, ops):
        tree = BPlusTree(branching=4)
        model = {}
        for op, key in ops:
            if op == "add":
                tree.insert(key, key * 2)
                model[key] = key * 2
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert dict(tree.items()) == model


def rid(n):
    return RowId(0, n)


class TestHashIndex:
    def test_insert_lookup_delete(self):
        index = HashIndex("ix", "t", ["a"], unique=False)
        index.insert((1,), rid(0))
        index.insert((1,), rid(1))
        assert sorted(index.lookup((1,)), key=lambda r: r.slot) == [rid(0), rid(1)]
        index.delete((1,), rid(0))
        assert index.lookup((1,)) == [rid(1)]
        assert len(index) == 1

    def test_delete_missing_raises(self):
        index = HashIndex("ix", "t", ["a"])
        with pytest.raises(SchemaError):
            index.delete((1,), rid(0))

    def test_unique_violation(self):
        index = HashIndex("ix", "t", ["a"], unique=True)
        index.insert((1,), rid(0))
        with pytest.raises(ConstraintError):
            index.insert((1,), rid(1))

    def test_unique_allows_nulls(self):
        index = HashIndex("ix", "t", ["a"], unique=True)
        index.insert((None,), rid(0))
        index.insert((None,), rid(1))  # NULL keys never conflict
        assert len(index) == 2

    def test_clear(self):
        index = HashIndex("ix", "t", ["a"])
        index.insert((1,), rid(0))
        index.clear()
        assert index.lookup((1,)) == []


class TestBTreeIndex:
    def test_range_scan_with_duplicates(self):
        index = BTreeIndex("ix", "t", ["a"], branching=4)
        for i in range(10):
            index.insert((i % 3,), rid(i))
        hits = list(index.range_scan((1,), (1,)))
        assert all(key == (1,) for key, _rid in hits)
        assert len(hits) == len([i for i in range(10) if i % 3 == 1])

    def test_range_scan_nulls_first(self):
        index = BTreeIndex("ix", "t", ["a"])
        index.insert((None,), rid(0))
        index.insert((5,), rid(1))
        index.insert((1,), rid(2))
        keys = [key for key, _r in index.range_scan()]
        assert keys == [(None,), (1,), (5,)]

    def test_one_sided_bounds(self):
        index = BTreeIndex("ix", "t", ["a"])
        for i in range(10):
            index.insert((i,), rid(i))
        assert len(list(index.range_scan(low=(7,)))) == 3
        assert len(list(index.range_scan(high=(2,), include_high=False))) == 2

    def test_unique_enforced(self):
        index = BTreeIndex("ix", "t", ["a"], unique=True)
        index.insert((1,), rid(0))
        with pytest.raises(ConstraintError):
            index.insert((1,), rid(1))

    def test_multi_column_keys(self):
        index = BTreeIndex("ix", "t", ["a", "b"])
        index.insert((1, "x"), rid(0))
        index.insert((1, "y"), rid(1))
        assert index.lookup((1, "x")) == [rid(0)]
        keys = [key for key, _r in index.range_scan()]
        assert keys == [(1, "x"), (1, "y")]

    def test_delete_then_lookup(self):
        index = BTreeIndex("ix", "t", ["a"])
        index.insert((1,), rid(0))
        index.insert((1,), rid(1))
        index.delete((1,), rid(0))
        assert index.lookup((1,)) == [rid(1)]


class TestFactory:
    def test_make_index_kinds(self):
        assert isinstance(make_index("hash", "i", "t", ["a"]), HashIndex)
        assert isinstance(make_index("btree", "i", "t", ["a"]), BTreeIndex)
        with pytest.raises(SchemaError):
            make_index("bitmap", "i", "t", ["a"])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            make_index("hash", "i", "t", [])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            make_index("hash", "i", "t", ["a", "a"])
