"""Tests for declarative field validation and computed display fields."""

import pytest

from repro.errors import FormSpecError
from repro.forms import FormController
from repro.forms.spec import FieldSpec, FormSpec
from repro.relational.database import Database
from repro.relational.types import ColumnType


@pytest.fixture
def items_db(db):
    db.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT, price FLOAT)"
    )
    db.execute("INSERT INTO items VALUES (1, 'nut', 4, 2.5), (2, 'bolt', 10, 1.0)")
    return db


@pytest.fixture
def spec():
    return FormSpec(
        name="items_form",
        source="items",
        title="Items",
        fields=[
            FieldSpec("id", "Id", ColumnType.INT, 8, 0, in_key=True),
            FieldSpec(
                "name", "Name", ColumnType.TEXT, 20, 1, required=True, pattern="%t%"
            ),
            FieldSpec("qty", "Qty", ColumnType.INT, 8, 2, minimum=0, maximum=100),
            FieldSpec("price", "Price", ColumnType.FLOAT, 10, 3),
            FieldSpec(
                "total", "Total", ColumnType.FLOAT, 10, 4, expression="qty * price"
            ),
        ],
        order_by=["id"],
    )


@pytest.fixture
def controller(items_db, spec):
    return FormController(items_db, spec)


class TestComputedFields:
    def test_displayed_per_record(self, controller):
        assert controller.field_texts["total"] == "10"
        controller.next_record()
        assert controller.field_texts["total"] == "10"  # 10 * 1.0

    def test_recomputed_after_edit(self, controller):
        controller.begin_edit()
        controller.set_field("qty", "8")
        assert controller.save()
        assert controller.field_texts["total"] == "20"

    def test_never_editable(self, controller):
        controller.begin_edit()
        assert not controller.editable("total")
        controller.cancel()
        controller.begin_query()
        assert not controller.editable("total")

    def test_not_sent_to_dml(self, controller, items_db):
        controller.begin_insert()
        controller.set_field("id", "3")
        controller.set_field("name", "str-t")
        controller.set_field("qty", "2")
        controller.set_field("price", "5")
        assert controller.save()
        assert items_db.query("SELECT qty FROM items WHERE id = 3") == [(2,)]

    def test_computed_key_rejected(self):
        with pytest.raises(FormSpecError):
            FieldSpec("x", "X", ColumnType.INT, 5, 0, in_key=True, expression="1+1")

    def test_data_columns_excludes_virtual(self, spec):
        assert "total" not in spec.data_columns
        assert "total" in spec.columns


class TestValidation:
    def test_maximum(self, controller):
        controller.begin_edit()
        controller.set_field("qty", "150")
        assert not controller.save()
        assert "must be <= 100" in controller.message
        assert controller.mode.value == "EDIT"

    def test_minimum(self, controller):
        controller.begin_edit()
        controller.set_field("qty", "-3")
        assert not controller.save()
        assert "must be >= 0" in controller.message

    def test_required(self, controller):
        controller.begin_edit()
        controller.set_field("name", "")
        assert not controller.save()
        assert "required" in controller.message

    def test_pattern(self, controller):
        controller.begin_edit()
        controller.set_field("name", "xyz")
        assert not controller.save()
        assert "must match" in controller.message
        controller.set_field("name", "bolt-two")
        assert controller.save()

    def test_null_passes_range_checks(self, controller):
        # qty nullable: empty input bypasses min/max (only 'required' traps it).
        controller.begin_edit()
        controller.set_field("qty", "")
        assert controller.save()

    def test_validation_on_insert(self, controller, items_db):
        controller.begin_insert()
        controller.set_field("id", "9")
        controller.set_field("name", "nt")
        controller.set_field("qty", "101")
        assert not controller.save()
        assert items_db.execute("SELECT COUNT(*) FROM items").scalar() == 2
