#!/usr/bin/env python3
"""Quickstart: a database, a view, a form window — in ~40 lines.

Run:  python examples/quickstart.py

Builds a tiny company database, opens an auto-generated form over an
updatable view, and drives it with keystrokes: browse, query-by-form,
edit through the view.  The frames are printed as text — everything a
real terminal would show.
"""

from repro import Database
from repro.core import WowApp


def main() -> None:
    db = Database()
    db.execute_script(
        """
        CREATE TABLE dept (id INT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE emp (
            id INT PRIMARY KEY, name TEXT NOT NULL,
            dept_id INT, salary FLOAT,
            FOREIGN KEY (dept_id) REFERENCES dept (id));
        INSERT INTO dept VALUES (1, 'eng'), (2, 'sales');
        INSERT INTO emp VALUES
            (10, 'ada', 1, 100.0), (11, 'bob', 2, 90.0), (12, 'cyd', 1, 120.0);
        CREATE VIEW eng_emps AS
            SELECT id, name, salary FROM emp WHERE dept_id = 1
            WITH CHECK OPTION;
        """
    )

    app = WowApp(db, width=60, height=12)
    form = app.open_form("eng_emps")  # auto-generated form over the view
    print("== A window on the world: the auto-generated form ==")
    print(app.screen_text())

    # Browse to the next record (one keystroke).
    app.send_keys("<DOWN>")
    print("\n== After <DOWN>: the next engineering employee ==")
    print(app.screen_text())

    # Edit through the view: F2, TAB to salary, retype, F2 saves.
    app.send_keys("<F2><TAB><TAB><END><BACKSPACE><BACKSPACE><BACKSPACE>150<F2>")
    print("\n== Salary edited through the view (base table updated) ==")
    print(app.screen_text())
    print("base table says:", db.query("SELECT salary FROM emp WHERE id = 12"))

    # Query by form: F4, criterion '>120' in the salary field, ENTER.
    app.send_keys("<F4><TAB><TAB>>120<ENTER>")
    print("\n== Query-by-form: salary > 120 ==")
    print(app.screen_text())
    print(f"\nkeystrokes used in this whole session: {app.keys.total}")
    print(f"cells transmitted: {app.wm.renderer.cells_transmitted}")


if __name__ == "__main__":
    main()
