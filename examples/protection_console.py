#!/usr/bin/env python3
"""Protection console: views as protection domains, plus the power tools.

Run:  python examples/protection_console.py

The scenario the forms-over-views architecture was built for: the DBA owns
the payroll table; a clerk gets a *view* (no salary column, no executives)
and works it through forms, a datasheet grid, and an in-UI SQL window —
never able to see past the view.  Finishes with a report and a CSV export,
the batch side of the same world.
"""

import io

from repro.core import WowApp
from repro.relational.auth import AuthError
from repro.relational.csvio import export_csv_text
from repro.relational.database import Database
from repro.reports import ReportSpec, run_report
from repro.windows.geometry import Rect


def main() -> None:
    db = Database()

    # --- the DBA sets the world up -------------------------------------
    db.execute_script(
        """
        CREATE TABLE payroll (
            id INT PRIMARY KEY, name TEXT NOT NULL,
            grade INT DEFAULT 1, salary FLOAT, executive BOOL DEFAULT FALSE);
        INSERT INTO payroll VALUES
            (1, 'ada',  2, 120.0, FALSE),
            (2, 'bob',  1,  90.0, FALSE),
            (3, 'cyd',  3, 150.0, FALSE),
            (4, 'vera', 9, 900.0, TRUE);
        CREATE VIEW staff AS
            SELECT id, name, grade FROM payroll WHERE executive = FALSE
            WITH CHECK OPTION;
        GRANT SELECT, UPDATE, INSERT ON staff TO clerk;
        """
    )

    # --- the clerk's session --------------------------------------------
    db.set_user("clerk")
    app = WowApp(db, width=90, height=24)

    grid = app.open_table_form("staff", Rect(0, 0, 44, 12))
    print("== The clerk's whole world: the staff view as a datasheet ==")
    print(app.screen_text())

    # The clerk promotes bob a grade, in place.
    app.send_keys("<DOWN><RIGHT><RIGHT>2<ENTER>")
    db.set_user("dba")  # (only to verify the base table for this demo)
    print("\nbob's grade (base table):",
          db.query("SELECT grade FROM payroll WHERE id = 2"))
    db.set_user("clerk")

    # Base table remains invisible — even through the SQL window.
    app.open_sql_window(Rect(45, 0, 44, 12))
    app.send_keys("SELECT * FROM payroll<ENTER>")
    print("\n== The SQL window enforces the same authority ==")
    print(app.screen_text())

    # Inserts through the view inherit the protection predicate.
    app.send_keys("INSERT INTO staff (id, name, grade) VALUES (5, 'dee', 1)<ENTER>")
    db.set_user("dba")
    print("\nnew row's executive flag (auto-filled FALSE by the view):",
          db.query("SELECT executive FROM payroll WHERE id = 5"))
    db.set_user("clerk")

    # And the check option stops any escape attempt cold.
    try:
        db.update("staff", {"grade": 9}, "id = 99999")  # no-op is fine
        db.set_user("dba")
        db.execute(
            "CREATE VIEW staff_x AS SELECT id, executive FROM payroll "
            "WHERE executive = FALSE WITH CHECK OPTION"
        )
        db.execute("GRANT UPDATE, SELECT ON staff_x TO clerk")
        db.set_user("clerk")
        db.update("staff_x", {"executive": True}, "id = 1")
    except Exception as exc:
        print(f"\nescape attempt rejected: {type(exc).__name__}: {exc}")

    # --- back to the DBA: report and export ------------------------------
    db.set_user("dba")
    print("\n== The DBA's payroll report (grouped, with totals) ==")
    spec = ReportSpec(
        title="Payroll by grade",
        source="payroll",
        columns=["name", "salary"],
        group_by="grade",
        totals=["salary"],
    )
    print(run_report(db, spec))

    print("== CSV export of the clerk-visible view ==")
    print(export_csv_text(db, "staff"))


if __name__ == "__main__":
    main()
