#!/usr/bin/env python3
"""Order entry: the classic 1983 application, end to end.

Run:  python examples/order_entry.py

A painted order form with validation clauses and a computed total, a
CHECK-constrained schema, FK pick lists, and a master–detail pair
(customers -> their orders) — the full forms-over-views toolkit on the
bread-and-butter workload of the era.
"""

from repro.core import WowApp
from repro.errors import CheckConstraintError
from repro.forms.paint import paint_form
from repro.forms.spec import FieldSpec
from repro.relational.database import Database
from repro.relational.types import ColumnType


def build_db() -> Database:
    db = Database()
    db.execute_script(
        """
        CREATE TABLE customers (
            id INT PRIMARY KEY, name TEXT NOT NULL, city TEXT);
        CREATE TABLE orders (
            id INT PRIMARY KEY,
            customer_id INT NOT NULL,
            item TEXT NOT NULL,
            qty INT NOT NULL DEFAULT 1,
            unit_price FLOAT NOT NULL,
            CHECK (qty > 0),
            CHECK (unit_price >= 0),
            FOREIGN KEY (customer_id) REFERENCES customers (id));
        INSERT INTO customers VALUES
            (1, 'acme corp', 'london'), (2, 'globex', 'paris');
        INSERT INTO orders VALUES
            (100, 1, 'widget', 3, 9.5),
            (101, 1, 'sprocket', 1, 24.0),
            (102, 2, 'widget', 10, 9.0);
        """
    )
    return db


TEMPLATE = """
 ORDER ENTRY ---------------------------------
 Order no:  [id    ]     Customer: [customer_id]
 Item:      [item              ]
 Quantity:  [qty   ]  Unit price: [unit_price]
 ----------------------------------------------
 Order total:
"""


def main() -> None:
    db = build_db()
    app = WowApp(db, width=100, height=26)

    # Paint the order form, then add validation and the computed total.
    spec = paint_form(db, "orders", TEMPLATE, title="Order Entry")
    spec.field_for("qty").minimum = 1
    spec.field_for("qty").maximum = 999
    spec.field_for("item").required = True
    spec.fields.append(
        FieldSpec(
            "total", "", ColumnType.FLOAT, 10, 5,
            expression="qty * unit_price", x=24,
        )
    )

    orders = app.open_form("orders", spec=spec, x=0, y=0)
    customers = app.open_form("customers", x=52, y=0)
    app.link(customers, orders, on=[("id", "customer_id")])

    print("== The painted order form, linked to its customer master ==")
    print(app.screen_text())

    # Enter a new order, using the pick list for the customer.
    app.wm.raise_window(orders)
    app.send_keys("<F3>")  # INSERT mode
    app.send_keys("103<TAB>")  # order no
    app.send_keys("<F7>")  # pick list on customer_id
    print("\n== F7: customer pick list over the form ==")
    print(app.screen_text())
    app.send_keys("<DOWN><ENTER>")  # choose 'globex'
    app.send_keys("<TAB>gizmo<TAB>4<TAB>12.5<F2>")
    print("\nsaved:", orders.controller.message)
    print("new order:", db.query("SELECT * FROM orders WHERE id = 103"))

    # The new order belongs to globex; move the master there to see it
    # (the detail form only shows the current customer's orders).
    app.wm.raise_window(customers)
    app.send_keys("<DOWN>")
    app.wm.raise_window(orders)
    app.send_keys("<END>")
    print("computed total on screen:", orders.controller.field_texts["total"])

    # Validation clause in action: quantity over the declared maximum.
    app.send_keys("<F2><TAB><TAB><TAB>5000<F2>")
    print("\nvalidation:", orders.controller.message)
    app.send_keys("<ESC>")

    # And the schema-level CHECK backs it up below the UI:
    try:
        db.execute("UPDATE orders SET qty = -1 WHERE id = 100")
    except CheckConstraintError as exc:
        print("engine CHECK:", exc)

    # The master still drives the detail rowset.
    app.wm.raise_window(customers)
    app.send_keys("<HOME>")
    print("\nacme's orders:", orders.controller.record_count)
    app.send_keys("<DOWN>")
    print("globex's orders:", orders.controller.record_count)


if __name__ == "__main__":
    main()
