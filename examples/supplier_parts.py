#!/usr/bin/env python3
"""Supplier–parts: views, view chains, and WITH CHECK OPTION in action.

Run:  python examples/supplier_parts.py

Shows the view machinery the forms sit on, using Codd's supplier–parts
database: DML through a select–project view, a view defined over another
view, the check option rejecting escaping rows, and the EXPLAIN output for
a query through a view.
"""

from repro.errors import CheckOptionError
from repro.workloads import build_supplier_parts


def main() -> None:
    db = build_supplier_parts(suppliers=12, parts=25, shipments=60)

    print("== london_suppliers (a WITH CHECK OPTION view) ==")
    for row in db.query("SELECT * FROM london_suppliers ORDER BY id"):
        print("  ", row)

    print("\n-- INSERT through the view (city auto-filled to 'london') --")
    db.insert("london_suppliers", {"id": 99, "name": "new-co", "status": 20})
    print("   base row:", db.query("SELECT * FROM suppliers WHERE id = 99"))

    print("\n-- UPDATE through the view --")
    db.update("london_suppliers", {"status": 30}, "id = 99")
    print("   status now:", db.execute("SELECT status FROM suppliers WHERE id = 99").scalar())

    print("\n-- A view over a view: heavy_red_parts ==")
    for row in db.query("SELECT * FROM heavy_red_parts ORDER BY id LIMIT 5"):
        print("  ", row)
    print("-- updating through the chain writes the base table --")
    first = db.query("SELECT id FROM heavy_red_parts ORDER BY id LIMIT 1")
    if first:
        part_id = first[0][0]
        db.update("heavy_red_parts", {"weight": 40.0}, f"id = {part_id}")
        print(
            f"   parts[{part_id}].weight =",
            db.execute(f"SELECT weight FROM parts WHERE id = {part_id}").scalar(),
        )

    print("\n-- the check option rejects rows that would escape the view --")
    try:
        # Through a CHECK OPTION view over city='london', you cannot create
        # a row the view wouldn't show.  The insert path auto-fills city,
        # so provoke it through an update view exposing the predicate column.
        db.execute(
            "CREATE VIEW london_full AS SELECT id, name, city FROM suppliers "
            "WHERE city = 'london' WITH CHECK OPTION"
        )
        db.update("london_full", {"city": "paris"}, "id = 99")
    except CheckOptionError as exc:
        print("   rejected as expected:", exc)

    print("\n== EXPLAIN of a query through a view ==")
    print(db.execute("EXPLAIN SELECT name FROM heavy_red_parts WHERE weight > 30").plan)

    print("\n== supply_summary (aggregate view) ==")
    for row in db.query("SELECT * FROM supply_summary ORDER BY total_qty DESC LIMIT 3"):
        print("  ", row)


if __name__ == "__main__":
    main()
