#!/usr/bin/env python3
"""Library: query-by-form vs the two baselines, with keystroke accounting.

Run:  python examples/library_qbf.py

Performs the same task — "find the loans that are not yet returned and due
before 1983-03-01, then mark the first one returned" — through all three
interfaces and prints what each one cost in keystrokes.  This is a small
live rendition of the reconstructed Table 1.
"""

from repro.baselines import DumpBrowser, SqlCli
from repro.core import WowApp
from repro.workloads import build_library


def forms_cost() -> int:
    db = build_library(books=30, members=10, loans=60)
    app = WowApp(db, width=80, height=20)
    form = app.open_form("loans")
    # F4 query mode; criteria: returned=false, due < date; ENTER executes.
    app.send_keys("<F4>")
    # TAB to out_date..returned: fields are id, book_id, member_id, out_date, due, returned
    app.send_keys("<TAB><TAB><TAB><TAB>")  # to 'due'
    app.send_keys("<<1983-03-01")  # '<<' is a literal '<' in key scripts
    app.send_keys("<TAB>false<ENTER>")
    matches = form.controller.record_count
    # Mark the first one returned: F2 edit, TAB to returned, type true, save.
    app.send_keys("<F2><TAB><TAB><TAB><TAB><TAB>true<F2>")
    print(f"  [forms] matches={matches}, message={form.controller.message!r}")
    return app.keys.total


def sql_cost() -> int:
    db = build_library(books=30, members=10, loans=60)
    cli = SqlCli(db)
    result = cli.run(
        "SELECT id FROM loans WHERE returned = FALSE AND due < '1983-03-01' ORDER BY id"
    )
    first = result.rows[0][0]
    cli.run(f"UPDATE loans SET returned = TRUE WHERE id = {first}")
    print(f"  [sql]   matches={len(result.rows)}")
    return cli.keys.total


def dump_cost() -> int:
    db = build_library(books=30, members=10, loans=60)
    browser = DumpBrowser(db, "loans")
    # The dump browser has single-predicate filters only: filter on due,
    # then walk records checking 'returned' by eye (each step costs keys).
    browser.command("q due < 1983-03-01")
    steps = 0
    while browser.current_row() is not None and browser.current_row()[5]:
        before = browser.position
        browser.command("n")
        steps += 1
        if browser.position == before:  # hit the end
            break
    browser.command("u returned=true")
    print(f"  [dump]  walked {steps} records to find an unreturned one")
    return browser.keys.total


def main() -> None:
    print("Task: find unreturned loans due before 1983-03-01; mark one returned.\n")
    forms = forms_cost()
    sql = sql_cost()
    dump = dump_cost()
    print("\nkeystroke cost per interface:")
    print(f"  WoW forms     : {forms:4d}")
    print(f"  SQL monitor   : {sql:4d}")
    print(f"  dump browser  : {dump:4d}")
    print(f"\nforms vs sql advantage: {sql / forms:.1f}x fewer keystrokes")


if __name__ == "__main__":
    main()
