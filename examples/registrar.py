#!/usr/bin/env python3
"""Registrar: master–detail windows over the university workload.

Run:  python examples/registrar.py

Opens two linked windows — a department form (master) and a browser over
students (detail) — plus a third window with a form on the updatable
``senior_students`` view.  Moving the master re-filters the detail: several
simultaneous *windows on the world* of one database.
"""

from repro.core import WowApp
from repro.forms.linking import FormLink
from repro.relational import expr as E
from repro.windows.geometry import Rect
from repro.workloads import build_university


def main() -> None:
    db = build_university(students=60, courses=15)
    app = WowApp(db, width=100, height=28)

    # Master: a department form.
    dept_form = app.open_form("departments", x=0, y=0)

    # Detail: a browser over students, linked on major_id.
    browser = app.open_browser("students", Rect(0, 8, 64, 14))

    # The browser is not a form, so link manually through its filter.
    def propagate() -> None:
        row = dept_form.controller.current_row
        if row is None:
            browser.filter = E.BinOp("=", E.Literal(1), E.Literal(0))
        else:
            browser.filter = E.BinOp(
                "=", E.ColumnRef("major_id"), E.Literal(row[0])
            )
        browser.refresh()

    dept_form.controller.on_record_change.append(propagate)
    propagate()
    app.wm.render_frame()

    print("== Master (departments) + detail (students of that major) ==")
    print(app.screen_text())

    # Move the master: the detail follows.
    app.wm.raise_window(dept_form)
    app.send_keys("<DOWN>")
    print("\n== After <DOWN> on the master: mathematics majors ==")
    print(app.screen_text())

    # A third window: the senior_students updatable view.
    senior_form = app.open_form("senior_students", x=66, y=8)
    print("\n== Third window: form over the senior_students view ==")
    print(app.screen_text())

    # Give the first senior a GPA bump, through the view.
    app.send_keys("<F2><TAB><TAB><TAB><END><BACKSPACE><BACKSPACE><BACKSPACE><BACKSPACE>4.0<F2>")
    controller = senior_form.controller
    sid = controller.field_texts["id"]
    print(f"\nsenior #{sid} gpa now:", db.query(f"SELECT gpa FROM students WHERE id = {sid}"))
    print("message:", controller.message)
    print(f"\nkeystrokes: {app.keys.total}, cells transmitted: {app.wm.renderer.cells_transmitted}")


if __name__ == "__main__":
    main()
