"""Fig 1 — point-query latency vs table size, with and without an index,
through a view.

Expected shape: the unindexed series grows linearly with table size (full
scan under the view); the indexed series stays near-flat (B+-tree descent).
The crossover argument for interactive forms: at 1983 terminal rates, only
the indexed series keeps form navigation instantaneous on large relations.
"""

from __future__ import annotations

import time

from repro.relational.database import Database

SIZES = [100, 1_000, 10_000]
PROBES = 30


def _build(size: int) -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE people (id INT PRIMARY KEY, name TEXT, score INT)"
    )
    db.execute("BEGIN")
    for i in range(size):
        db.insert("people", {"id": i, "name": f"p{i:06d}", "score": i % 97})
    db.execute("COMMIT")
    db.execute(
        "CREATE VIEW people_view AS SELECT id, name, score FROM people"
    )
    return db


def _probe_ms(db: Database, size: int, use_index: bool) -> float:
    db.planner_config.enable_index_selection = use_index
    start = time.perf_counter()
    for probe in range(PROBES):
        target = (probe * 37) % size
        rows = db.query(f"SELECT name FROM people_view WHERE id = {target}")
        assert rows == [(f"p{target:06d}",)]
    elapsed = time.perf_counter() - start
    db.planner_config.enable_index_selection = True
    return (elapsed / PROBES) * 1000.0


def test_fig1_latency_vs_size(report, benchmark):
    series = []
    for size in SIZES:
        db = _build(size)
        indexed = _probe_ms(db, size, use_index=True)
        scanned = _probe_ms(db, size, use_index=False)
        series.append((size, indexed, scanned))

    # pytest-benchmark on the indexed probe at the largest size.
    db = _build(SIZES[-1])
    benchmark(lambda: db.query(f"SELECT name FROM people_view WHERE id = {SIZES[-1] // 2}"))

    report.section("Fig 1 — point query through a view: latency vs table size (ms)")
    report.table(
        ["rows", "indexed ms", "full-scan ms", "scan/indexed"],
        [
            (size, f"{indexed:.3f}", f"{scanned:.3f}", f"{scanned / indexed:.1f}x")
            for size, indexed, scanned in series
        ],
    )
    report.save("fig1_latency")

    # Shape: scan latency grows ~linearly; indexed stays much flatter.
    scan_growth = series[-1][2] / series[0][2]
    index_growth = series[-1][1] / series[0][1]
    assert scan_growth > 10  # 100x more rows -> far more than 10x slower scans
    assert index_growth < scan_growth / 4
    assert series[-1][2] > series[-1][1] * 10  # indexing wins big at 10k rows
