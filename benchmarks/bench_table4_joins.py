"""Table 4 — join strategy ablation on the master–detail query.

The query behind every master–detail window pair: join masters to their
details.  Expected shape: nested-loop degrades quadratically with detail
cardinality; hash and merge stay near-linear; hash wins outright (no sort),
which is why it is the planner's default for equi-joins.
"""

from __future__ import annotations

import time

from repro.relational.database import Database

MASTERS = 50
FANOUTS = [1, 10, 50]
QUERY = (
    "SELECT COUNT(*) FROM masters m JOIN details d ON m.id = d.master_id"
)


def _build(fanout: int) -> Database:
    db = Database()
    db.execute("CREATE TABLE masters (id INT PRIMARY KEY, name TEXT)")
    db.execute(
        "CREATE TABLE details (id INT PRIMARY KEY, master_id INT, payload TEXT)"
    )
    detail_id = 0
    for master_id in range(MASTERS):
        db.insert("masters", {"id": master_id, "name": f"m{master_id}"})
        for _ in range(fanout):
            db.insert(
                "details",
                {
                    "id": detail_id,
                    "master_id": master_id,
                    "payload": f"d{detail_id}",
                },
            )
            detail_id += 1
    return db


def _time_strategy(db: Database, strategy: str, repeats: int = 3) -> float:
    db.planner_config.join_strategy = strategy
    expected = MASTERS * int(db.execute("SELECT COUNT(*) FROM details").scalar() / MASTERS)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        count = db.execute(QUERY).scalar()
        best = min(best, time.perf_counter() - start)
        assert count == expected
    db.planner_config.join_strategy = "auto"
    return best * 1000.0  # ms


def test_table4_join_strategies(report, benchmark):
    rows = []
    results = {}
    for fanout in FANOUTS:
        db = _build(fanout)
        nl = _time_strategy(db, "nl")
        hash_ms = _time_strategy(db, "hash")
        merge = _time_strategy(db, "merge")
        results[fanout] = {"nl": nl, "hash": hash_ms, "merge": merge}
        rows.append(
            (
                fanout,
                MASTERS * fanout,
                f"{nl:.2f}",
                f"{hash_ms:.2f}",
                f"{merge:.2f}",
                f"{nl / hash_ms:.1f}x",
            )
        )

    # pytest-benchmark timing on the planner-default (hash) at max fanout.
    db = _build(FANOUTS[-1])
    benchmark(lambda: db.execute(QUERY))

    report.section("Table 4 — join strategies on the master-detail query (ms)")
    report.table(
        ["fan-out", "detail rows", "nested-loop", "hash", "merge", "NL/hash"],
        rows,
    )
    report.save("table4_joins")

    # Shape: at the largest fan-out, hash clearly beats nested-loop, and
    # NL's disadvantage does not shrink as fan-out grows (with headroom for
    # scheduler noise on loaded machines).
    assert results[FANOUTS[-1]]["nl"] > results[FANOUTS[-1]]["hash"] * 2
    small_ratio = results[FANOUTS[0]]["nl"] / results[FANOUTS[0]]["hash"]
    large_ratio = results[FANOUTS[-1]]["nl"] / results[FANOUTS[-1]]["hash"]
    assert large_ratio > small_ratio * 0.8
