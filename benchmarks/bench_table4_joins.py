"""Table 4 — join strategy ablation on the master–detail query.

The query behind every master–detail window pair: join masters to their
details.  Expected shape: nested-loop degrades quadratically with detail
cardinality; hash and merge stay near-linear; hash wins outright (no sort),
which is why it is the planner's default for equi-joins.
"""

from __future__ import annotations

from repro.obs import instrument
from repro.relational.database import Database
from repro.sql.parser import parse_statement

MASTERS = 50
FANOUTS = [1, 10, 50]
QUERY = (
    "SELECT COUNT(*) FROM masters m JOIN details d ON m.id = d.master_id"
)


def _build(fanout: int) -> Database:
    db = Database()
    db.execute("CREATE TABLE masters (id INT PRIMARY KEY, name TEXT)")
    db.execute(
        "CREATE TABLE details (id INT PRIMARY KEY, master_id INT, payload TEXT)"
    )
    detail_id = 0
    for master_id in range(MASTERS):
        db.insert("masters", {"id": master_id, "name": f"m{master_id}"})
        for _ in range(fanout):
            db.insert(
                "details",
                {
                    "id": detail_id,
                    "master_id": master_id,
                    "payload": f"d{detail_id}",
                },
            )
            detail_id += 1
    return db


def _find_op(op, predicate):
    if predicate(op):
        return op
    for child in op.children():
        found = _find_op(child, predicate)
        if found is not None:
            return found
    return None


def _time_strategy(db: Database, strategy: str, repeats: int = 3) -> float:
    """The join operator's inclusive time, via EXPLAIN ANALYZE machinery.

    Instead of wall-clocking execute() from the outside, each repeat
    instruments the operator tree (exactly what EXPLAIN ANALYZE does) and
    reads the join node's own counters — so the number excludes parsing,
    planning, and result assembly, and the row count is verified at the
    operator where it is produced.
    """
    db.planner_config.join_strategy = strategy
    expected = db.execute("SELECT COUNT(*) FROM details").scalar()
    best = float("inf")
    for _ in range(repeats):
        plan = db.planner.plan_select(parse_statement(QUERY))
        stats = instrument(plan)
        rows = list(plan.rows())
        join_op = _find_op(plan, lambda op: "Join" in op.label())
        assert join_op is not None, plan.explain()
        join_stats = stats[id(join_op)]
        assert join_stats.rows_out == expected
        assert rows[0][0] == expected
        best = min(best, join_stats.elapsed)
    db.planner_config.join_strategy = "auto"
    return best * 1000.0  # ms


def test_table4_join_strategies(report, benchmark):
    rows = []
    results = {}
    for fanout in FANOUTS:
        db = _build(fanout)
        nl = _time_strategy(db, "nl")
        hash_ms = _time_strategy(db, "hash")
        merge = _time_strategy(db, "merge")
        results[fanout] = {"nl": nl, "hash": hash_ms, "merge": merge}
        rows.append(
            (
                fanout,
                MASTERS * fanout,
                f"{nl:.2f}",
                f"{hash_ms:.2f}",
                f"{merge:.2f}",
                f"{nl / hash_ms:.1f}x",
            )
        )

    # pytest-benchmark timing on the planner-default (hash) at max fanout.
    db = _build(FANOUTS[-1])
    benchmark(lambda: db.execute(QUERY))

    report.section("Table 4 — join strategies on the master-detail query (ms)")
    report.table(
        ["fan-out", "detail rows", "nested-loop", "hash", "merge", "NL/hash"],
        rows,
    )
    report.save("table4_joins")

    # Shape: at the largest fan-out, hash clearly beats nested-loop, and
    # NL's disadvantage does not shrink as fan-out grows (with headroom for
    # scheduler noise on loaded machines).
    assert results[FANOUTS[-1]]["nl"] > results[FANOUTS[-1]]["hash"] * 2
    small_ratio = results[FANOUTS[0]]["nl"] / results[FANOUTS[0]]["hash"]
    large_ratio = results[FANOUTS[-1]]["nl"] / results[FANOUTS[-1]]["hash"]
    assert large_ratio > small_ratio * 0.8
