"""Benchmark package: one module per reconstructed table/figure."""
