"""Buffer-pool v2 benchmark: prefetch, segment cache, and free-space reuse.

Three gates, one per headline storage feature of the v2 pool:

1. **Cold sequential scan** — a full heap scan through ``scan_pages``
   with read-ahead prefetch vs ``prefetch_pages=0`` (the seed pool's
   page-at-a-time read path).  The OS page cache hides device latency
   on a dev box, so the cold device is modelled with an ``IOShim`` that
   adds a fixed latency to every ``pread`` — the prefetch win is the
   collapsed *number* of reads (one per contiguous run, not one per
   page), which the report also shows raw.  Gate: >= 1.5x shimmed
   wall-clock speedup AND >= 1.5x fewer preads.
2. **Hot analytic scan** — a GROUP BY aggregate over a warm table with
   ``PlannerConfig.segment_cache`` on vs off (both vectorized).  With
   the cache on, repeat scans serve decoded column arrays straight from
   the segment store instead of re-reading and re-decoding every page.
   Gate: >= 2x.
3. **Free-space reuse** — delete half a table, insert the same volume
   back, and require the heap file not to grow: the free-space map must
   route the new rows into the holes the deletes left.  Gate: heap page
   count after == before (measured through the ``_storage`` telemetry
   table).

Run standalone (``python benchmarks/bench_bufferpool.py [--smoke]``);
``--smoke`` shrinks the dataset (still >= 8x the pool size) and loosens
the hot-scan gate to 1.3x so CI noise cannot flake the job.  Results
land in ``benchmarks/results/bufferpool.txt``, machine-readable copies
in ``benchmarks/results/bufferpool.json`` and ``BENCH_bufferpool.json``
at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.relational.database import Database  # noqa: E402
from repro.relational.faults import IOShim  # noqa: E402
from repro.relational.heap import HeapFile  # noqa: E402
from repro.relational.pager import (  # noqa: E402
    DEFAULT_PREFETCH_PAGES,
    FilePager,
    PAGE_SIZE,
)
from repro.relational.planner import PlannerConfig  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Fixed per-pread latency modelling a cold device (spinning disks sit at
# ~100us-10ms per seek; 50us is deliberately conservative).
DEVICE_LATENCY_S = 0.00005

HOT_QUERY = "SELECT grp, COUNT(*), SUM(val) FROM fact GROUP BY grp"


class _SlowDisk(IOShim):
    """IOShim that charges a fixed latency per ``pread`` call.

    Batch reads pay the latency once per call, page-at-a-time reads pay
    it once per page — exactly the trade-off prefetch exists to win.
    The wait busy-spins on ``perf_counter`` because ``time.sleep`` on
    Linux rounds tiny sleeps up to the scheduler tick, which would
    exaggerate the speedup instead of modelling it.
    """

    def __init__(self, latency: float = DEVICE_LATENCY_S) -> None:
        self.latency = latency
        self.preads = 0

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        self.preads += 1
        deadline = time.perf_counter() + self.latency
        while time.perf_counter() < deadline:
            pass
        return super().pread(fd, length, offset)


def _build_heap(path: str, rows: int) -> int:
    """Write a heap of *rows* fixed-size records; return its page count."""
    pager = FilePager(path, pool_size=4096)
    heap = HeapFile(pager)
    for _ in range(rows):
        heap.insert(b"r" * 180)
    heap.flush()
    pager.close()
    return os.path.getsize(path) // PAGE_SIZE


def _cold_scan(path: str, pool_size: int, prefetch: int, shimmed: bool):
    """One cold full scan; returns (ms, preads, rows_seen)."""
    shim = _SlowDisk() if shimmed else None
    pager = FilePager(
        path, pool_size=pool_size, prefetch_pages=prefetch, io=shim
    )
    heap = HeapFile(pager)
    start = time.perf_counter()
    rows = sum(len(live) for _, _, live in heap.scan_pages())
    elapsed = (time.perf_counter() - start) * 1000.0
    preads = shim.preads if shim else pager.stats["misses"]
    pager.close()
    return elapsed, preads, rows


def _best_cold(path, pool_size, prefetch, shimmed, rounds):
    best = (float("inf"), 0, 0)
    for _ in range(rounds):
        result = _cold_scan(path, pool_size, prefetch, shimmed)
        if result[0] < best[0]:
            best = result
    return best


def _build_fact_db(data_dir: str, rows: int) -> Database:
    db = Database(
        path=data_dir, planner_config=PlannerConfig(vectorized=True)
    )
    db.execute(
        "CREATE TABLE fact (id INT PRIMARY KEY, grp INT, val INT, pad TEXT)"
    )
    pad = "p" * 40
    for i in range(rows):
        db.insert(
            "fact", {"id": i, "grp": i % 13, "val": i % 997, "pad": pad}
        )
    db.checkpoint()
    return db


def _best_hot(db: Database, segment_cache: bool, rounds: int, reps: int):
    """Best-of-*rounds* mean ms for the hot aggregate; returns (ms, rows)."""
    db.set_planner_config(
        PlannerConfig(vectorized=True, segment_cache=segment_cache)
    )
    rows = db.query(HOT_QUERY)  # warm: plan cached, segments built
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            db.query(HOT_QUERY)
        best = min(best, (time.perf_counter() - start) / reps)
    return best * 1000.0, sorted(rows)


def _heap_pages(db: Database, table: str) -> int:
    return db.execute(
        f"SELECT heap_pages FROM _storage WHERE table_name = '{table}'"
    ).scalar()


def _reuse_probe(db: Database, rows: int):
    """Delete the first half of ``fact``, insert it back, compare pages.

    The reinserted rows reuse the deleted ids so the records are
    byte-identical — otherwise larger id values encode a byte or two
    wider and legitimately pack fewer rows per page, which would read
    as growth the free-space map is not responsible for.
    """
    pages_before = _heap_pages(db, "fact")
    half = rows // 2
    db.execute(f"DELETE FROM fact WHERE id < {half}")
    pad = "p" * 40
    for i in range(half):
        db.insert(
            "fact",
            {"id": i, "grp": i % 13, "val": i % 997, "pad": pad},
        )
    db.checkpoint()
    pages_after = _heap_pages(db, "fact")
    count = db.execute("SELECT COUNT(*) FROM fact").scalar()
    return pages_before, pages_after, count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset and a looser hot-scan gate (1.3x) for CI",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        heap_rows, pool_size, fact_rows, rounds, reps = 6_000, 32, 4_000, 3, 2
        cold_gate, hot_gate = 1.5, 1.3
    else:
        heap_rows, pool_size, fact_rows, rounds, reps = 40_000, 128, 20_000, 5, 3
        cold_gate, hot_gate = 1.5, 2.0

    with tempfile.TemporaryDirectory(prefix="bench_bufferpool_") as tmp:
        # --- gate 1: cold sequential scan, prefetch vs page-at-a-time ---
        heap_path = os.path.join(tmp, "cold.heap")
        heap_pages = _build_heap(heap_path, heap_rows)
        assert heap_pages >= 8 * pool_size, (
            f"dataset ({heap_pages} pages) must dwarf the pool ({pool_size})"
        )
        prefetch = DEFAULT_PREFETCH_PAGES
        base_ms, base_preads, base_rows = _best_cold(
            heap_path, pool_size, 0, True, rounds
        )
        pre_ms, pre_preads, pre_rows = _best_cold(
            heap_path, pool_size, prefetch, True, rounds
        )
        raw_base_ms, _, _ = _best_cold(heap_path, pool_size, 0, False, rounds)
        raw_pre_ms, _, _ = _best_cold(
            heap_path, pool_size, prefetch, False, rounds
        )
        assert base_rows == pre_rows == heap_rows, "scan modes disagree on rows"
        cold_speedup = base_ms / pre_ms
        pread_ratio = base_preads / pre_preads

        # --- gates 2 + 3: hot analytic scan, then free-space reuse ---
        db = _build_fact_db(os.path.join(tmp, "db"), fact_rows)
        hot_off_ms, hot_off_rows = _best_hot(db, False, rounds, reps)
        hot_on_ms, hot_on_rows = _best_hot(db, True, rounds, reps)
        assert hot_off_rows == hot_on_rows, "segment modes disagree on result"
        hot_speedup = hot_off_ms / hot_on_ms
        seg_stats = db.metrics_snapshot()["segments"]

        pages_before, pages_after, live_rows = _reuse_probe(db, fact_rows)
        db.close()

    mode = "smoke" if args.smoke else "full"
    lines = [
        "Buffer-pool v2 benchmark (prefetch, segment cache, free-space map)",
        "",
        f"cold heap: {heap_pages} pages, pool {pool_size} "
        f"({heap_pages / pool_size:.0f}x), simulated device latency "
        f"{DEVICE_LATENCY_S * 1e6:.0f} us/pread; fact table: {fact_rows} rows "
        f"(best of {rounds} rounds)",
        "",
        f"cold scan       page-at-a-time  : {base_ms:8.2f} ms "
        f"({base_preads} preads)",
        f"                prefetch={prefetch:<7} : {pre_ms:8.2f} ms "
        f"({pre_preads} preads)",
        f"                speedup         : {cold_speedup:8.2f} x   "
        f"(gate >= {cold_gate}x; {pread_ratio:.0f}x fewer preads)",
        f"                raw (OS-cached) : {raw_base_ms:8.2f} ms -> "
        f"{raw_pre_ms:8.2f} ms",
        "",
        f"hot aggregate   segment cache off: {hot_off_ms:8.2f} ms",
        f"                segment cache on : {hot_on_ms:8.2f} ms",
        f"                speedup          : {hot_speedup:8.2f} x   "
        f"(gate >= {hot_gate}x)",
        "",
        f"segment counters: hits={seg_stats['seg_hits']} "
        f"misses={seg_stats['seg_misses']} builds={seg_stats['seg_builds']} "
        f"rows_served={seg_stats['seg_rows_served']}",
        "",
        f"free-space reuse: {pages_before} pages -> {pages_after} pages "
        f"after delete-half + reinsert-half ({live_rows} live rows; "
        f"gate: no growth)",
        "",
        f"mode: {mode}",
    ]
    text = "\n".join(lines)
    print(text)

    payload = {
        "benchmark": "bufferpool",
        "mode": mode,
        "workload": {
            "heap_rows": heap_rows,
            "heap_pages": heap_pages,
            "pool_size": pool_size,
            "fact_rows": fact_rows,
            "rounds": rounds,
            "reps": reps,
            "device_latency_us": DEVICE_LATENCY_S * 1e6,
        },
        "cold_scan": {
            "base_ms": base_ms,
            "prefetch_ms": pre_ms,
            "base_preads": base_preads,
            "prefetch_preads": pre_preads,
            "raw_base_ms": raw_base_ms,
            "raw_prefetch_ms": raw_pre_ms,
            "speedup": cold_speedup,
            "pread_ratio": pread_ratio,
        },
        "hot_scan": {
            "query": HOT_QUERY,
            "segments_off_ms": hot_off_ms,
            "segments_on_ms": hot_on_ms,
            "speedup": hot_speedup,
            "segment_stats": seg_stats,
        },
        "free_space_reuse": {
            "pages_before": pages_before,
            "pages_after": pages_after,
            "live_rows": live_rows,
        },
        "gates": {"cold": cold_gate, "hot": hot_gate, "reuse": "no growth"},
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "bufferpool.txt"), "w") as fh:
        fh.write(text + "\n")
    with open(os.path.join(RESULTS_DIR, "bufferpool.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    with open(os.path.join(REPO_ROOT, "BENCH_bufferpool.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    failures = []
    if cold_speedup < cold_gate:
        failures.append(f"cold-scan speedup {cold_speedup:.2f}x < {cold_gate}x")
    if pread_ratio < cold_gate:
        failures.append(f"pread ratio {pread_ratio:.2f}x < {cold_gate}x")
    if hot_speedup < hot_gate:
        failures.append(f"hot-scan speedup {hot_speedup:.2f}x < {hot_gate}x")
    if pages_after > pages_before:
        failures.append(
            f"heap grew from {pages_before} to {pages_after} pages — "
            "free-space map did not reuse the deleted space"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
