"""Ablation A (design decision D1) — the cost of routing forms through views.

WoW's architecture routes every form operation through its view (analysis,
column mapping, predicate re-checking).  The ablation compares the same
form-level edit-save cycle against forms bound to: the base table directly,
a pure projection view, and a predicate view WITH CHECK OPTION (the
worst case: visibility filtering plus a post-image re-check on every save).

Expected shape: the indirection is close to free for projection views and
stays a small constant factor even with check option — the headline
architectural claim: data independence costs almost nothing.
"""

from __future__ import annotations

import time

from repro.forms import FormController, generate_form
from repro.workloads import build_supplier_parts

OPS = 40
WARMUP = 5


def _edit_loop(db, source: str) -> float:
    """Time OPS edit-save cycles on a form over *source*; seconds total."""
    controller = FormController(db, generate_form(db, source))
    assert controller.record_count > 0
    for i in range(WARMUP):
        controller.begin_edit()
        controller.set_field("status", str(10 + (i % 3) * 10))
        assert controller.save()
    start = time.perf_counter()
    for i in range(OPS):
        controller.begin_edit()
        controller.set_field("status", str(10 + ((i + 1) % 3) * 10))
        assert controller.save()
    return time.perf_counter() - start


def test_ablation_view_indirection(report, benchmark):
    db = build_supplier_parts(suppliers=30, parts=30, shipments=60)
    db.execute(
        "CREATE VIEW suppliers_v AS SELECT id, name, status, city FROM suppliers"
    )
    # Give every supplier the same city so the predicate view sees them all
    # (keeps the three loops editing an identical record population).
    db.execute("UPDATE suppliers SET city = 'london'")
    db.execute(
        "CREATE VIEW suppliers_pred AS SELECT id, name, status FROM suppliers "
        "WHERE city = 'london' WITH CHECK OPTION"
    )

    timings = {
        "direct base table": _edit_loop(db, "suppliers"),
        "projection view": _edit_loop(db, "suppliers_v"),
        "predicate + check option": _edit_loop(db, "suppliers_pred"),
    }

    controller = FormController(db, generate_form(db, "suppliers_pred"))

    def one_edit():
        controller.begin_edit()
        controller.set_field("status", "20")
        controller.save()

    benchmark(one_edit)

    direct = timings["direct base table"]
    report.section("Ablation A — form edit-save cycle by binding shape")
    report.table(
        ["binding", f"total s ({OPS} edits)", "µs/edit", "vs direct"],
        [
            (label, f"{seconds:.4f}", f"{seconds / OPS * 1e6:.0f}", f"{seconds / direct:.2f}x")
            for label, seconds in timings.items()
        ],
    )
    report.line(
        "\nfinding: view indirection is a small constant factor — the forms"
        "\narchitecture buys data independence nearly for free."
    )
    report.save("ablation_direct")

    # Shape: no binding shape costs more than 5x direct access, and the
    # check-option shape stays in the same band as the plain view (the 0.7
    # factor absorbs scheduler noise).
    for seconds in timings.values():
        assert seconds < direct * 5
    assert timings["predicate + check option"] >= timings["projection view"] * 0.7
