"""Engine micro-benchmarks (not tied to a paper table; regression guards).

pytest-benchmark timings for the hot inner loops every experiment rests on:
heap insert/scan, B+-tree insert/lookup/range, row codec, screen diff, and
end-to-end statement execution.
"""

from __future__ import annotations

import pytest

from repro.relational.btree import BPlusTree
from repro.relational.database import Database
from repro.relational.heap import HeapFile
from repro.relational.pager import MemoryPager
from repro.relational.rowcodec import decode_row, encode_row
from repro.relational.schema import Column, TableSchema
from repro.relational.types import ColumnType
from repro.windows.screen import ScreenBuffer

SCHEMA = TableSchema(
    "bench",
    [
        Column("id", ColumnType.INT),
        Column("name", ColumnType.TEXT),
        Column("score", ColumnType.FLOAT),
        Column("flag", ColumnType.BOOL),
    ],
)
ROW = (123456, "a-typical-name-string", 98.75, True)


def test_micro_rowcodec_encode(benchmark):
    benchmark(encode_row, SCHEMA, ROW)


def test_micro_rowcodec_decode(benchmark):
    data = encode_row(SCHEMA, ROW)
    assert benchmark(decode_row, SCHEMA, data) == ROW


def test_micro_heap_insert(benchmark):
    heap = HeapFile(MemoryPager())
    record = encode_row(SCHEMA, ROW)
    benchmark(heap.insert, record)


def test_micro_heap_scan_1k(benchmark):
    heap = HeapFile(MemoryPager())
    record = encode_row(SCHEMA, ROW)
    for _ in range(1000):
        heap.insert(record)
    assert benchmark(lambda: sum(1 for _ in heap.scan())) == 1000


def test_micro_heap_scan_pages_1k(benchmark):
    """The page-batch directory walk behind the vectorized scan path."""
    heap = HeapFile(MemoryPager())
    record = encode_row(SCHEMA, ROW)
    for _ in range(1000):
        heap.insert(record)
    assert (
        benchmark(lambda: sum(len(live) for _, _, live in heap.scan_pages())) == 1000
    )


def test_micro_scan_paths_delta(report):
    """Tuple-at-a-time vs page-batched table scan on the same 5k-row heap.

    The delta this reports is the storage-layer half of the vectorized
    executor's win: one slot-directory pass per page (struct.iter_unpack)
    feeding the compiled per-schema row decoder, vs one heap.read + generic
    decode_row per record.  Reported to benchmarks/results/scan_paths.txt.
    """
    import time

    from repro.relational.table import Table

    table = Table(
        TableSchema("scanbench", [c for c in SCHEMA.columns]), HeapFile(MemoryPager())
    )
    for i in range(5000):
        table.insert((i, f"row-{i:05d}", i * 0.25, i % 2 == 0))

    def best_ms(fn, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1000.0

    tuple_rows = list(table.rows())
    batched_rows = [row for batch in table.rows_batched() for row in batch]
    assert tuple_rows == batched_rows  # same rows, same order

    tuple_ms = best_ms(lambda: sum(1 for _ in table.rows()))
    batched_ms = best_ms(
        lambda: sum(len(batch) for batch in table.rows_batched())
    )

    report.section("Scan paths: tuple-at-a-time vs page-batched (5k rows)")
    report.table(
        ["path", "ms / full scan"],
        [
            ("rows() — heap.read + decode_row per record", f"{tuple_ms:.2f}"),
            ("rows_batched() — page directory + compiled decoder", f"{batched_ms:.2f}"),
            ("speedup", f"{tuple_ms / batched_ms:.2f}x"),
        ],
    )
    report.save("scan_paths")

    assert batched_ms < tuple_ms  # the batched path must never regress below


def test_micro_btree_insert(benchmark):
    counter = iter(range(10**9))

    def insert_one():
        tree_local = tree
        tree_local.insert(next(counter), None)

    tree = BPlusTree()
    benchmark(insert_one)


def test_micro_btree_lookup(benchmark):
    tree = BPlusTree()
    for i in range(10_000):
        tree.insert(i, i)
    assert benchmark(tree.get, 7777) == 7777


def test_micro_btree_range_100(benchmark):
    tree = BPlusTree()
    for i in range(10_000):
        tree.insert(i, i)
    assert benchmark(lambda: sum(1 for _ in tree.range(5000, 5099))) == 100


def test_micro_screen_diff(benchmark):
    a = ScreenBuffer(80, 24)
    b = ScreenBuffer(80, 24)
    text = "a single changed line of text"
    b.write(10, 10, text)
    # A written space cell equals a blank cell, so only non-spaces differ.
    assert len(benchmark(b.diff, a)) == sum(1 for ch in text if ch != " ")


@pytest.fixture(scope="module")
def loaded_db():
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score FLOAT)")
    db.execute("BEGIN")
    for i in range(5000):
        db.insert("t", {"id": i, "name": f"row{i}", "score": float(i % 100)})
    db.execute("COMMIT")
    return db


def test_micro_point_select(benchmark, loaded_db):
    result = benchmark(loaded_db.query, "SELECT name FROM t WHERE id = 2500")
    assert result == [("row2500",)]


def test_micro_parse_only(benchmark):
    from repro.sql.parser import parse_statement

    sql = (
        "SELECT a.x, b.y, COUNT(*) AS n FROM alpha a JOIN beta b ON a.k = b.k "
        "WHERE a.x > 10 AND b.tag LIKE 'q%' GROUP BY a.x, b.y ORDER BY n DESC LIMIT 5"
    )
    benchmark(parse_statement, sql)


def test_micro_aggregate_5k(benchmark, loaded_db):
    rows = benchmark(
        loaded_db.query,
        "SELECT score, COUNT(*) FROM t GROUP BY score",
    )
    assert len(rows) == 100


def test_micro_obs_noop_overhead(report):
    """Pay-for-use: with observability off, instrumentation must cost <5%.

    Baseline and instrumented runs do identical engine work on the same
    statement; the instrumented path additionally goes through
    Database.execute's tracer span (a null context while disabled), the
    disabled registry's one-branch helpers, and the statement log's
    enabled check (capture off via ``statlog_capacity=0``).  Reported to
    benchmarks/results/obs_overhead.txt.
    """
    import time

    from repro.obs import Registry
    from repro.sql.parser import parse_statement

    db = Database(obs=Registry(enabled=False), statlog_capacity=0)
    db.tracer.enabled = False
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    db.execute("BEGIN")
    for i in range(2000):
        db.insert("t", {"id": i, "name": f"row{i}"})
    db.execute("COMMIT")

    sql = "SELECT name FROM t WHERE id = 1234"
    iterations = 300
    rounds = 7

    def run_baseline() -> None:
        # The same work execute() does, minus the instrumentation shell.
        statement = parse_statement(sql)
        db._execute_statement(statement, sql)

    def run_instrumented() -> None:
        db.execute(sql)

    def best_round(func) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(iterations):
                func()
            best = min(best, time.perf_counter() - start)
        return best / iterations

    run_baseline(), run_instrumented()  # warm both paths
    baseline_s = best_round(run_baseline)
    instrumented_s = best_round(run_instrumented)
    overhead_pct = (instrumented_s / baseline_s - 1.0) * 100.0

    # The raw per-call price of a disabled instrument, for context.
    disabled = Registry(enabled=False)
    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        disabled.add("hot.counter")
    null_ns = (time.perf_counter() - start) / calls * 1e9

    report.section("Observability off: residual instrumentation overhead")
    report.table(
        ["metric", "value"],
        [
            ("point select, uninstrumented (us)", f"{baseline_s * 1e6:.2f}"),
            ("point select, obs disabled (us)", f"{instrumented_s * 1e6:.2f}"),
            ("overhead", f"{overhead_pct:+.2f}%"),
            ("disabled registry.add() (ns/call)", f"{null_ns:.0f}"),
        ],
    )
    report.save("obs_overhead")

    assert overhead_pct < 5.0, f"no-op obs overhead {overhead_pct:.2f}% >= 5%"
