"""Fig 4 — multi-window scaling: cost per keystroke vs number of windows.

Several windows on the world at once: how does per-keystroke work scale as
windows pile up?  Expected shape: *transmitted cells* stay flat (only the
active window's content changes — the differential renderer localises the
damage), while *composite time* grows mildly with window count (every
window repaints into the back buffer each frame).
"""

from __future__ import annotations

import time

from repro.core import WowApp
from repro.workloads import build_university

WINDOW_COUNTS = [1, 2, 4, 8, 16]
STEPS = 30


def _session(window_count: int):
    db = build_university(students=40, courses=10)
    app = WowApp(db, width=120, height=40)
    for position in range(window_count):
        x = (position % 4) * 28
        y = (position // 4) * 9
        app.open_form("students", x=x, y=y)
    app.wm.renderer.reset_stats()
    start = time.perf_counter()
    cells = app.send_keys("<DOWN>" * STEPS)
    elapsed = time.perf_counter() - start
    return cells / STEPS, (elapsed / STEPS) * 1000.0


def test_fig4_window_scaling(report, benchmark):
    series = [(n,) + _session(n) for n in WINDOW_COUNTS]

    db = build_university(students=40, courses=10)
    app = WowApp(db, width=120, height=40)
    for position in range(4):
        app.open_form("students", x=position * 28, y=0)
    benchmark(lambda: app.send_keys("<DOWN>"))

    report.section("Fig 4 — per-keystroke cost vs number of open windows")
    report.table(
        ["windows", "cells/keystroke", "ms/keystroke"],
        [(n, f"{cells:.0f}", f"{ms:.2f}") for n, cells, ms in series],
    )
    report.save("fig4_windows")

    # Shape: transmitted cells stay in the same ballpark (only the active
    # window changes), while composite time grows with window count.
    cells_1 = series[0][1]
    cells_16 = series[-1][1]
    assert cells_16 < cells_1 * 3  # no blow-up in line traffic
    assert series[-1][2] > series[0][2]  # compositing does cost more
