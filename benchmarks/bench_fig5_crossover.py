"""Fig 5 — the forms/SQL crossover on increasingly ad-hoc queries.

Query-by-form expresses *conjunctions* in a handful of keystrokes, but a
disjunctive ad-hoc question ("students in any of departments 1..k") forces
the forms user to run k separate QBF queries, while the SQL user types one
IN-list that grows only a few characters per term.  Total user cost at 1983
terminal rates (typing + line transmission) therefore crosses over: forms
win for small k, SQL wins beyond the crossover.  This is the honest limit
of forms the paper's discussion section would concede.
"""

from __future__ import annotations

from repro.core import WowApp
from repro.metrics import TerminalCostModel
from repro.baselines import SqlCli
from repro.workloads import build_university

K_VALUES = [1, 2, 3, 4, 6, 8, 10, 12]
MODEL = TerminalCostModel()  # 0.5 s/keystroke, 960 cells/s


def _forms_cost(k: int):
    """k separate QBF queries, paging through every matching record.

    The task is "review all students in departments 1..k".  The form shows
    one record at a time, so the user pays one keystroke (and one small
    differential frame) per match — the honest cost of record-at-a-time
    interfaces on bulk-review tasks.
    """
    db = build_university(students=120, courses=10)
    app = WowApp(db, width=90, height=26)
    form = app.open_form("students")
    app.wm.renderer.reset_stats()
    app.keys.reset()
    total_matches = 0
    for dept in range(1, k + 1):
        app.send_keys(f"<F4><TAB><TAB>{dept}<ENTER>")  # criterion on major_id
        matches = form.controller.record_count
        total_matches += matches
        if matches > 1:
            app.send_keys("<DOWN>" * (matches - 1))  # review each record
    expected = db.execute(
        f"SELECT COUNT(*) FROM students WHERE major_id <= {k}"
    ).scalar()
    assert total_matches == expected
    return app.keys.total, app.wm.renderer.cells_transmitted


def _sql_cost(k: int):
    db = build_university(students=120, courses=10)
    cli = SqlCli(db)
    in_list = ", ".join(str(d) for d in range(1, k + 1))
    result = cli.run(f"SELECT * FROM students WHERE major_id IN ({in_list})")
    assert result is not None
    return cli.keys.total, cli.output_chars


def test_fig5_crossover(report, benchmark):
    series = []
    crossover = None
    for k in K_VALUES:
        forms_keys, forms_cells = _forms_cost(k)
        sql_keys, sql_cells = _sql_cost(k)
        forms_seconds = MODEL.cost(forms_keys, forms_cells)
        sql_seconds = MODEL.cost(sql_keys, sql_cells)
        if crossover is None and sql_seconds < forms_seconds:
            crossover = k
        series.append((k, forms_keys, sql_keys, forms_seconds, sql_seconds))

    benchmark(lambda: _forms_cost(3))

    report.section("Fig 5 — total user cost (s) vs disjunctive query width k")
    report.table(
        ["k", "forms keys", "sql keys", "forms s", "sql s", "winner"],
        [
            (
                k,
                fk,
                sk,
                f"{fs:.1f}",
                f"{ss:.1f}",
                "forms" if fs <= ss else "SQL",
            )
            for k, fk, sk, fs, ss in series
        ],
    )
    report.line(f"\ncrossover at k = {crossover}")
    report.save("fig5_crossover")

    # Shape: forms win for small k, SQL wins for large k, and there is a
    # single crossover between them.
    assert series[0][3] < series[0][4], "forms must win at k=1"
    assert series[-1][3] > series[-1][4], "SQL must win at k=12"
    assert crossover is not None and 2 <= crossover <= 10
    # Winner flips exactly once along the series.
    winners = ["forms" if fs <= ss else "sql" for _k, _fk, _sk, fs, ss in series]
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    assert flips == 1
