"""Shared benchmark infrastructure.

Every bench module regenerates one table or figure of the reconstructed
evaluation (see DESIGN.md §4).  Output goes two places:

* the terminal (via the ``report`` fixture, which bypasses capture), so
  ``pytest benchmarks/ --benchmark-only`` shows the tables live;
* ``benchmarks/results/<name>.txt``, which EXPERIMENTS.md is built from;
* ``benchmarks/results/<name>.json``, the same sections and tables as
  structured data, for tooling that tracks results across commits.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Sequence

import pytest

from repro.obs import Registry, set_registry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def obs_registry():
    """A fresh metrics registry installed as the process default.

    Benchmarks that read counters or span histograms use this so one
    module's numbers never bleed into another's; the previous default is
    restored afterwards.
    """
    fresh = Registry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def span_summary(registry: Registry, name: str) -> Optional[Dict[str, Any]]:
    """The ``span.<name>`` histogram summary from *registry*, if recorded."""
    return registry.snapshot()["histograms"].get(f"span.{name}")


@pytest.fixture
def report(capsys):
    """A print function that bypasses pytest capture and records to a file.

    Usage::

        def test_table(report, ...):
            report.section("Table 1 — ...")
            report.row("task", "forms", "sql")
            report.save("table1")
    """

    class _Reporter:
        def __init__(self) -> None:
            self.lines: List[str] = []
            self.sections: List[Dict[str, Any]] = []

        def _current_section(self) -> Dict[str, Any]:
            if not self.sections:
                self.sections.append({"title": None, "tables": []})
            return self.sections[-1]

        def line(self, text: str = "") -> None:
            self.lines.append(text)
            with capsys.disabled():
                print(text)

        def section(self, title: str) -> None:
            self.sections.append({"title": title, "tables": []})
            self.line("")
            self.line("=" * len(title))
            self.line(title)
            self.line("=" * len(title))

        def table(self, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
            self._current_section()["tables"].append(
                {
                    "headers": [str(h) for h in headers],
                    "rows": [[v for v in row] for row in rows],
                }
            )
            widths = [len(str(h)) for h in headers]
            text_rows = [[str(v) for v in row] for row in rows]
            for row in text_rows:
                for index, value in enumerate(row):
                    widths[index] = max(widths[index], len(value))
            self.line(
                "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
            )
            self.line("  ".join("-" * w for w in widths))
            for row in text_rows:
                self.line("  ".join(v.ljust(w) for v, w in zip(row, widths)))

        def save(self, name: str) -> None:
            os.makedirs(RESULTS_DIR, exist_ok=True)
            path = os.path.join(RESULTS_DIR, f"{name}.txt")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("\n".join(self.lines) + "\n")
            json_path = os.path.join(RESULTS_DIR, f"{name}.json")
            with open(json_path, "w", encoding="utf-8") as fh:
                json.dump(
                    {"benchmark": name, "sections": self.sections},
                    fh,
                    indent=2,
                    default=str,
                )
                fh.write("\n")

    return _Reporter()
