"""Fig 3 — screen update cost per scroll step: differential vs full repaint.

The renderer's differential mode (DESIGN.md D2) transmits only changed
cells.  Expected shape: a within-page selection move costs two grid rows;
a scrolling step costs about the grid body; full-repaint mode always costs
the whole screen — an order of magnitude more on a 1983 serial line.
"""

from __future__ import annotations

from repro.core import BrowserWindow, WowApp
from repro.relational.database import Database
from repro.windows.geometry import Rect

GRID_ROWS = [10, 20, 40, 60]
STEPS = 80


def _db(rows: int = 200) -> Database:
    db = Database()
    db.execute("CREATE TABLE items (id INT PRIMARY KEY, label TEXT, qty INT)")
    db.execute("BEGIN")
    for i in range(rows):
        db.insert("items", {"id": i, "label": f"item-{i:05d}", "qty": i % 7})
    db.execute("COMMIT")
    return db


def _scroll_cost(grid_rows: int, differential: bool) -> float:
    db = _db()
    height = grid_rows + 6
    app = WowApp(db, width=70, height=height, differential=differential)
    app.open_browser("items", Rect(0, 0, 60, grid_rows + 3))
    app.wm.renderer.reset_stats()
    cells = app.send_keys("<DOWN>" * STEPS)
    return cells / STEPS


def test_fig3_redraw(report, benchmark):
    series = []
    for grid_rows in GRID_ROWS:
        diff_cells = _scroll_cost(grid_rows, differential=True)
        full_cells = _scroll_cost(grid_rows, differential=False)
        series.append((grid_rows, diff_cells, full_cells))

    # Time one differential scroll step at the largest grid.
    db = _db()
    app = WowApp(db, width=70, height=66, differential=True)
    app.open_browser("items", Rect(0, 0, 60, 63))
    benchmark(lambda: app.send_keys("<DOWN>"))

    report.section("Fig 3 — cells transmitted per scroll step (grid sizes)")
    report.table(
        ["grid rows", "differential", "full repaint", "full/diff"],
        [
            (rows, f"{diff:.0f}", f"{full:.0f}", f"{full / diff:.1f}x")
            for rows, diff, full in series
        ],
    )
    report.line("\nat 9600 baud (960 cells/s), a full repaint of an 70x66 screen")
    report.line("takes ~4.8 s; the differential step stays well under 1 s.")
    report.save("fig3_redraw")

    # Shape: differential beats full repaint by a wide margin everywhere,
    # and the margin grows with screen size.
    for rows, diff, full in series:
        assert full > diff * 2.5, f"differential should win at {rows} rows"
    first_ratio = series[0][2] / series[0][1]
    last_ratio = series[-1][2] / series[-1][1]
    assert last_ratio >= first_ratio * 0.8  # margin does not collapse
