"""Table 1 — keystrokes per task: WoW forms vs SQL monitor vs dump browser.

Expected shape (the paper's thesis): forms cost a small constant number of
keystrokes for routine clerical tasks, the SQL monitor pays the full query
text every time, and the pre-forms dump browser degrades sharply on any
task its single-predicate commands cannot express (T6–T8).
"""

from __future__ import annotations

from benchmarks._interaction_tasks import (
    TASK_NAMES,
    run_dump_tasks,
    run_forms_tasks,
    run_sql_tasks,
)


def test_table1_keystrokes(report, benchmark):
    forms = benchmark(run_forms_tasks)  # timed: the full forms session
    sql = run_sql_tasks()
    dump = run_dump_tasks()

    report.section("Table 1 — keystrokes per task (university, 300 students)")
    rows = []
    for task in TASK_NAMES:
        advantage = sql[task] / forms[task]
        rows.append(
            (task, forms[task], sql[task], dump[task], f"{advantage:.1f}x")
        )
    total_forms = sum(forms.values())
    total_sql = sum(sql.values())
    total_dump = sum(dump.values())
    rows.append(
        (
            "TOTAL",
            total_forms,
            total_sql,
            total_dump,
            f"{total_sql / total_forms:.1f}x",
        )
    )
    report.table(
        ["task", "WoW forms", "SQL monitor", "dump browser", "forms vs SQL"],
        rows,
    )
    report.save("table1_keystrokes")

    # Shape assertions: forms beat SQL on every task; the dump browser
    # collapses on the query tasks it cannot express.
    for task in TASK_NAMES:
        assert forms[task] < sql[task], f"forms should beat SQL on {task}"
    assert dump["T6 ranged-query"] > forms["T6 ranged-query"] * 3
    assert dump["T8 multi-query"] > forms["T8 multi-query"] * 3
    assert total_forms * 2 < total_sql
