"""Fig 2 — form-open cost vs form width (number of fields).

Measures the full "open a window on the world" path: automatic form
generation from the catalog, widget construction, first composite, and the
first differential flush (which, for a fresh window, transmits the whole
window area).  Expected shape: cost grows roughly linearly in the number of
fields; even the widest form opens in milliseconds — i.e. form opening was
never the bottleneck, the terminal line was.
"""

from __future__ import annotations

import time

from repro.core import WowApp
from repro.relational.database import Database

WIDTHS = [2, 4, 8, 16, 32, 64]
REPEATS = 10


def _db_with_wide_table(columns: int) -> Database:
    db = Database()
    column_defs = ", ".join(f"c{i} INT" for i in range(1, columns))
    db.execute(f"CREATE TABLE wide (id INT PRIMARY KEY, {column_defs})")
    values = ", ".join(str(i) for i in range(columns))
    db.execute(f"INSERT INTO wide VALUES ({values})")
    return db


def _open_cost(columns: int):
    db = _db_with_wide_table(columns)
    best = float("inf")
    cells = 0
    for _ in range(REPEATS):
        app = WowApp(db, width=80, height=max(24, columns + 6))
        start = time.perf_counter()
        window = app.open_form("wide")
        best = min(best, time.perf_counter() - start)
        cells = app.wm.renderer.cells_transmitted
        app.close(window)
    return best * 1000.0, cells


def test_fig2_form_open(report, benchmark):
    series = [(w,) + _open_cost(w) for w in WIDTHS]

    db = _db_with_wide_table(16)

    def open_once():
        app = WowApp(db, width=80, height=30)
        app.open_form("wide")

    benchmark(open_once)

    report.section("Fig 2 — form open: generation + first paint vs #fields")
    report.table(
        ["fields", "open ms", "first-paint cells"],
        [(w, f"{ms:.2f}", cells) for w, ms, cells in series],
    )
    report.save("fig2_formopen")

    # Shape: wider forms cost more (both time and painted cells), roughly
    # linearly; nothing pathological.
    assert series[-1][1] > series[0][1]
    assert series[-1][2] > series[0][2]
    ratio = series[-1][1] / series[0][1]
    assert ratio < 64  # sub-linear to linear, not quadratic
