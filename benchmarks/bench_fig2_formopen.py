"""Fig 2 — form-open cost vs form width (number of fields).

Measures the full "open a window on the world" path: automatic form
generation from the catalog, widget construction, first composite, and the
first differential flush (which, for a fresh window, transmits the whole
window area).  Expected shape: cost grows roughly linearly in the number of
fields; even the widest form opens in milliseconds — i.e. form opening was
never the bottleneck, the terminal line was.
"""

from __future__ import annotations

from repro.core import WowApp
from repro.obs import Registry
from repro.relational.database import Database

WIDTHS = [2, 4, 8, 16, 32, 64]
REPEATS = 10


def _db_with_wide_table(columns: int) -> Database:
    # A private registry keeps this module's spans out of the process default.
    db = Database(obs=Registry())
    column_defs = ", ".join(f"c{i} INT" for i in range(1, columns))
    db.execute(f"CREATE TABLE wide (id INT PRIMARY KEY, {column_defs})")
    values = ", ".join(str(i) for i in range(columns))
    db.execute(f"INSERT INTO wide VALUES ({values})")
    return db


def _open_cost(columns: int):
    """Best form-open duration as measured by the ``form.open`` span.

    WowApp.open_form wraps generation + widget construction + first paint
    in a tracer span, so the measurement is taken where the work happens
    rather than wall-clocked from the outside.
    """
    db = _db_with_wide_table(columns)
    best = float("inf")
    cells = 0
    for _ in range(REPEATS):
        app = WowApp(db, width=80, height=max(24, columns + 6))
        window = app.open_form("wide")
        span = next(
            s for s in reversed(db.tracer.finished) if s.name == "form.open"
        )
        best = min(best, span.duration_ms)
        cells = app.wm.renderer.cells_transmitted
        app.close(window)
    open_count = db.obs.histogram("span.form.open").count
    assert open_count >= REPEATS  # every open was traced
    return best, cells


def test_fig2_form_open(report, benchmark):
    series = [(w,) + _open_cost(w) for w in WIDTHS]

    db = _db_with_wide_table(16)

    def open_once():
        app = WowApp(db, width=80, height=30)
        app.open_form("wide")

    benchmark(open_once)

    report.section("Fig 2 — form open: generation + first paint vs #fields")
    report.table(
        ["fields", "open ms", "first-paint cells"],
        [(w, f"{ms:.2f}", cells) for w, ms, cells in series],
    )
    report.save("fig2_formopen")

    # Shape: wider forms cost more (both time and painted cells), roughly
    # linearly; nothing pathological.
    assert series[-1][1] > series[0][1]
    assert series[-1][2] > series[0][2]
    ratio = series[-1][1] / series[0][1]
    assert ratio < 64  # sub-linear to linear, not quadratic
