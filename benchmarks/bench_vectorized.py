"""Vectorized executor benchmark: batch-at-a-time + compiled expressions
vs the tuple-at-a-time baseline, on the two workloads the paper's numbers
hang off:

1. **Table 4 join** — the master–detail COUNT(*) join (hash strategy),
   the query behind every master–detail window pair.  Gate: >= 3x.
2. **Fig 1 form refresh** — a filtered, sorted, LIMITed page read through
   a view, the statement a form refresh issues per keystroke.  Gate: >= 2x.

Both modes run the *same* plans through the *same* Database API; the only
difference is ``PlannerConfig.vectorized`` (the A/B flag, carried in the
plan-cache fingerprint so cached plans never cross modes).

Run standalone (``python benchmarks/bench_vectorized.py [--smoke]``);
``--smoke`` uses small tables and looser gates (1.5x / 1.2x) so the CI
runner's noise cannot flake the job.  Results land in
``benchmarks/results/vectorized.txt``, machine-readable copies in
``benchmarks/results/vectorized.json`` and ``BENCH_vectorized.json`` at
the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.relational.database import Database  # noqa: E402
from repro.relational.planner import PlannerConfig  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

JOIN_QUERY = (
    "SELECT COUNT(*) FROM masters m JOIN details d ON m.id = d.master_id "
    "WHERE d.qty >= 10"
)
REFRESH_QUERY = (
    "SELECT name, score FROM people_view "
    "WHERE score >= 40 AND score < 60 ORDER BY name LIMIT 24"
)


def _build(vectorized: bool, masters: int, fanout: int, people: int) -> Database:
    db = Database(planner_config=PlannerConfig(vectorized=vectorized))
    db.execute("CREATE TABLE masters (id INT PRIMARY KEY, name TEXT, region TEXT)")
    db.execute(
        "CREATE TABLE details (id INT PRIMARY KEY, master_id INT, qty INT, price FLOAT)"
    )
    detail_id = 0
    for master_id in range(masters):
        db.insert(
            "masters",
            {"id": master_id, "name": f"m{master_id}", "region": f"r{master_id % 5}"},
        )
        for d in range(fanout):
            db.insert(
                "details",
                {"id": detail_id, "master_id": master_id, "qty": d, "price": d * 1.5},
            )
            detail_id += 1
    db.execute("CREATE TABLE people (id INT PRIMARY KEY, name TEXT, score INT, city TEXT)")
    for p in range(people):
        db.insert(
            "people",
            {"id": p, "name": f"person{p:06d}", "score": p % 100, "city": f"c{p % 7}"},
        )
    db.execute(
        "CREATE VIEW people_view AS SELECT id, name, score FROM people WHERE score >= 0"
    )
    return db


def _best_ms(db: Database, sql: str, rounds: int, reps: int) -> float:
    """Best-of-*rounds* mean milliseconds per execute (warm plan cache)."""
    db.execute(sql)  # warm: plan cached, expressions compiled
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            db.execute(sql)
        best = min(best, (time.perf_counter() - start) / reps)
    return best * 1000.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small tables and looser gates (1.5x join, 1.2x refresh) for CI",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        masters, fanout, people, rounds, reps = 20, 20, 2_000, 3, 3
        join_gate, refresh_gate = 1.5, 1.2
    else:
        masters, fanout, people, rounds, reps = 50, 50, 10_000, 5, 3
        join_gate, refresh_gate = 3.0, 2.0

    timings = {}
    executor = {}
    for vectorized in (False, True):
        db = _build(vectorized, masters, fanout, people)
        join_ms = _best_ms(db, JOIN_QUERY, rounds, reps)
        refresh_ms = _best_ms(db, REFRESH_QUERY, rounds, reps)
        # Cross-check: both modes must agree on the answer.
        timings[vectorized] = {
            "join_ms": join_ms,
            "refresh_ms": refresh_ms,
            "join_count": db.execute(JOIN_QUERY).scalar(),
            "refresh_rows": len(db.query(REFRESH_QUERY)),
        }
        executor[vectorized] = db.metrics_snapshot()["executor"]

    base, vec = timings[False], timings[True]
    assert base["join_count"] == vec["join_count"], "modes disagree on join result"
    assert base["refresh_rows"] == vec["refresh_rows"], "modes disagree on refresh result"
    join_speedup = base["join_ms"] / vec["join_ms"]
    refresh_speedup = base["refresh_ms"] / vec["refresh_ms"]

    mode = "smoke" if args.smoke else "full"
    lines = [
        "Vectorized executor benchmark (batch execution + compiled expressions)",
        "",
        f"workload sizes: masters={masters} fanout={fanout} people={people} "
        f"(best of {rounds} rounds x {reps} reps, warm plan cache)",
        "",
        f"table4 join     tuple-at-a-time : {base['join_ms']:8.2f} ms",
        f"                vectorized      : {vec['join_ms']:8.2f} ms",
        f"                speedup         : {join_speedup:8.2f} x   (gate >= {join_gate}x)",
        "",
        f"fig1 refresh    tuple-at-a-time : {base['refresh_ms']:8.2f} ms",
        f"                vectorized      : {vec['refresh_ms']:8.2f} ms",
        f"                speedup         : {refresh_speedup:8.2f} x   (gate >= {refresh_gate}x)",
        "",
        f"vectorized executor counters: batches={executor[True]['batches']} "
        f"batch_rows={executor[True]['batch_rows']} "
        f"exprs_compiled={executor[True]['exprs_compiled']} "
        f"exprs_fallback={executor[True]['exprs_fallback']}",
        "",
        f"mode: {mode}",
    ]
    text = "\n".join(lines)
    print(text)

    payload = {
        "benchmark": "vectorized",
        "mode": mode,
        "workload": {"masters": masters, "fanout": fanout, "people": people,
                     "rounds": rounds, "reps": reps},
        "queries": {"join": JOIN_QUERY, "refresh": REFRESH_QUERY},
        "tuple_at_a_time": {"join_ms": base["join_ms"], "refresh_ms": base["refresh_ms"]},
        "vectorized": {"join_ms": vec["join_ms"], "refresh_ms": vec["refresh_ms"]},
        "speedup": {"join": join_speedup, "refresh": refresh_speedup},
        "gates": {"join": join_gate, "refresh": refresh_gate},
        "executor": executor[True],
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "vectorized.txt"), "w") as fh:
        fh.write(text + "\n")
    with open(os.path.join(RESULTS_DIR, "vectorized.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    with open(os.path.join(REPO_ROOT, "BENCH_vectorized.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    failures = []
    if join_speedup < join_gate:
        failures.append(f"join speedup {join_speedup:.2f}x < {join_gate}x")
    if refresh_speedup < refresh_gate:
        failures.append(f"refresh speedup {refresh_speedup:.2f}x < {refresh_gate}x")
    if executor[True]["exprs_fallback"]:
        failures.append(
            f"{executor[True]['exprs_fallback']} expressions fell back to the interpreter"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
