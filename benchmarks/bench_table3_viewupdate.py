"""Table 3 — DML through views: correctness and per-operation cost.

Six target shapes, from direct base access to a two-level view chain with
check option.  Expected shape: every translated operation lands on the base
table correctly; view overhead is a small constant factor (analysis +
predicate re-checking), growing with chain depth; the check option adds a
visibility re-check on writes.
"""

from __future__ import annotations

import time

from repro.relational.database import Database
from repro.workloads import build_supplier_parts

OPS_PER_SHAPE = 60


def _db() -> Database:
    db = build_supplier_parts(suppliers=40, parts=40, shipments=100)
    db.execute(
        "CREATE VIEW v_proj AS SELECT id, name, status, city FROM suppliers"
    )
    db.execute(
        "CREATE VIEW v_pred AS SELECT id, name, status FROM suppliers "
        "WHERE city = 'paris'"
    )
    db.execute(
        "CREATE VIEW v_check AS SELECT id, name, status FROM suppliers "
        "WHERE city = 'oslo' WITH CHECK OPTION"
    )
    db.execute(
        "CREATE VIEW v_chain AS SELECT id, name FROM v_pred WHERE status > 5"
    )
    return db


# (label, target, extra insert values, update changes)
SHAPES = [
    ("base table (direct)", "suppliers", {"status": 10, "city": "rome"}, {"status": 20}),
    ("projection view", "v_proj", {"status": 10, "city": "rome"}, {"status": 20}),
    ("predicate view", "v_pred", {"status": 10}, {"status": 20}),
    ("check-option view", "v_check", {"status": 10}, {"status": 20}),
    ("view-on-view chain", "v_chain", {}, {"name": "renamed"}),
]


def _measure(db: Database, target: str, extra: dict, changes: dict, base_id: int):
    """Run insert/update/delete cycles through *target*; return µs per op."""
    # Warm the code paths so no shape pays first-run costs.
    for i in range(5):
        warm_id = base_id + 900 + i
        values = {"id": warm_id, "name": f"warm-{warm_id}"}
        values.update(extra)
        db.insert(target, values)
        db.update(target, changes, f"id = {warm_id}")
        db.delete(target, f"id = {warm_id}")
    timings = {"insert": 0.0, "update": 0.0, "delete": 0.0}
    for i in range(OPS_PER_SHAPE):
        new_id = base_id + i
        values = {"id": new_id, "name": f"bench-{new_id}"}
        values.update(extra)
        start = time.perf_counter()
        db.insert(target, values)
        timings["insert"] += time.perf_counter() - start

        start = time.perf_counter()
        db.update(target, changes, f"id = {new_id}")
        timings["update"] += time.perf_counter() - start

        start = time.perf_counter()
        db.delete(target, f"id = {new_id}")
        timings["delete"] += time.perf_counter() - start
    return {op: (total / OPS_PER_SHAPE) * 1e6 for op, total in timings.items()}


def test_table3_view_update(report, benchmark):
    db = _db()

    # Correctness spot-checks before timing.
    db.insert("v_pred", {"id": 9001, "name": "paris-co", "status": 10})
    assert db.query("SELECT city FROM suppliers WHERE id = 9001") == [("paris",)]
    db.update("v_chain", {"name": "renamed"}, "id = 9001")
    assert db.query("SELECT name FROM suppliers WHERE id = 9001") == [("renamed",)]
    db.delete("v_pred", "id = 9001")
    assert db.execute("SELECT COUNT(*) FROM suppliers WHERE id = 9001").scalar() == 0
    from repro.errors import CheckOptionError
    db.insert("v_check", {"id": 9002, "name": "oslo-co", "status": 10})
    assert db.query("SELECT city FROM suppliers WHERE id = 9002") == [("oslo",)]
    db.delete("v_check", "id = 9002")

    rows = []
    results = {}
    base_id = 10000
    for label, target, extra, changes in SHAPES:
        measured = _measure(db, target, extra, changes, base_id)
        base_id += 1000
        results[label] = measured
        rows.append(
            (
                label,
                f"{measured['insert']:.0f}",
                f"{measured['update']:.0f}",
                f"{measured['delete']:.0f}",
                OPS_PER_SHAPE * 3,
            )
        )

    # The autofill-insert row: inserts through v_pred omit 'city' entirely.
    def autofill_insert():
        db.insert("v_pred", {"id": 99999, "name": "x", "status": 1})
        db.delete("v_pred", "id = 99999")

    timing = benchmark(autofill_insert)
    rows.append(("insert w/ autofill", "(timed by harness)", "-", "-", 2))

    report.section(
        f"Table 3 — DML through views, µs/op ({OPS_PER_SHAPE} ops per cell)"
    )
    report.table(["target shape", "insert µs", "update µs", "delete µs", "ops verified"], rows)
    overhead = results["predicate view"]["update"] / results["base table (direct)"]["update"]
    report.line(f"\npredicate-view update overhead vs direct: {overhead:.2f}x")
    report.save("table3_viewupdate")

    # Shape assertion: the view path is a bounded constant factor — it must
    # not blow up (the 10x bound), and on a quiet machine it costs a little
    # more than direct access (the 0.7 floor tolerates scheduler noise).
    assert 0.7 <= overhead < 10.0
