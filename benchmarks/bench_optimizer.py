"""Optimizer v2 benchmark: adaptive re-planning payoff and DP overhead.

Two measurements:

1. **Adaptive re-plan speedup** — three tables are ANALYZEd while tiny,
   then one grows ~100x, leaving the cached join plan built on badly stale
   estimates.  One database keeps replaying the stale plan
   (``adaptive_replan=False``); the other samples executions, notices the
   est-vs-act factor blow past ``replan_factor`` via the ``_plan_stats``
   feedback, re-ANALYZEs, and re-plans.  The gate: the feedback loop fires
   (``replans >= 1``) and the re-planned statement is measurably faster.
2. **Enumeration overhead** — the forms-refresh hot loop (same statement,
   warm plan cache) with DP join enumeration vs. the greedy heuristic must
   stay within 10%: enumeration cost is paid at plan time only, and the
   cache amortizes it away.

Run standalone (``python benchmarks/bench_optimizer.py [--smoke]``);
``--smoke`` uses small sizes and exits non-zero if a gate fails.  Results
land in ``benchmarks/results/optimizer.txt``.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.relational.database import Database  # noqa: E402
from repro.relational.planner import PlannerConfig  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

JOIN_SQL = "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k JOIN c ON c.j = b.j"


def build_skewed(db: Database, grow_a: int, b_rows: int) -> None:
    """Tiny a/c and mid-size b at ANALYZE time; afterwards a grows to
    *grow_a* rows so every estimate about it is stale by ~100x."""
    db.execute("CREATE TABLE a (id INT PRIMARY KEY, k INT)")
    db.execute("CREATE TABLE b (id INT PRIMARY KEY, k INT, j INT)")
    db.execute("CREATE TABLE c (id INT PRIMARY KEY, j INT)")
    insert_a = db.prepare("INSERT INTO a VALUES (?, ?)")
    insert_b = db.prepare("INSERT INTO b VALUES (?, ?, ?)")
    insert_c = db.prepare("INSERT INTO c VALUES (?, ?)")
    for i in range(4):
        insert_a.execute([i, i % 4])
    for i in range(b_rows):
        insert_b.execute([i, i % 4, i % 50])
    for i in range(10):
        insert_c.execute([i, i % 10])
    db.execute("ANALYZE")
    db.query(JOIN_SQL)  # cache the plan under the soon-stale statistics
    for i in range(4, grow_a):
        insert_a.execute([i, i % 4])


def time_per_call(fn, iterations: int) -> float:
    """Mean microseconds per call."""
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations * 1e6


def bench_adaptive(grow_a: int, b_rows: int, iterations: int):
    """(stale-plan µs, replanned µs, replans fired, feedback drops)."""
    stale_db = Database(
        planner_config=PlannerConfig(adaptive_replan=False)
    )
    adaptive_db = Database(statlog_sample_every=2)
    for db in (stale_db, adaptive_db):
        build_skewed(db, grow_a, b_rows)

    # Drive the adaptive database until the feedback loop has re-planned.
    for _ in range(6):
        adaptive_db.query(JOIN_SQL)
        if adaptive_db.planner.metrics["replans"]:
            break
    replans = adaptive_db.planner.metrics["replans"]
    drops = adaptive_db.plan_cache.stats["feedback_drops"]
    adaptive_db.query(JOIN_SQL)  # re-cache the fresh plan before timing
    # Sampling off for the timed window: measure plan quality, not
    # instrumentation overhead.
    adaptive_db.statement_log.sample_every = 0
    stale_us = time_per_call(lambda: stale_db.query(JOIN_SQL), iterations)
    fresh_us = time_per_call(lambda: adaptive_db.query(JOIN_SQL), iterations)
    return stale_us, fresh_us, replans, drops


REFRESH_SQL = "SELECT x.id, y.id FROM x JOIN y ON x.k = y.k"


def bench_enumeration_overhead(rows: int, iterations: int):
    """(dp µs, greedy µs, dp plan µs, greedy plan µs).

    The refresh loop uses two same-size tables so both enumerators settle
    on the *identical* physical plan (same order, same hash build side) —
    any per-query delta is pure enumeration overhead, which the plan cache
    must amortize to nothing.  The one-time planning cost of the 3-table
    chain is reported alongside (that is where DP actually pays).
    """
    from repro.sql.parser import parse_statement

    databases = []
    planned = []
    for enumeration in ("dp", "greedy"):
        db = Database(
            planner_config=PlannerConfig(join_enumeration=enumeration)
        )
        db.execute("CREATE TABLE x (id INT PRIMARY KEY, k INT)")
        db.execute("CREATE TABLE y (id INT PRIMARY KEY, k INT)")
        insert_x = db.prepare("INSERT INTO x VALUES (?, ?)")
        insert_y = db.prepare("INSERT INTO y VALUES (?, ?)")
        # Unique keys and equal sizes: every cost tie breaks the same way,
        # so DP and greedy provably emit the identical physical plan.
        for i in range(rows):
            insert_x.execute([i, i])
            insert_y.execute([i, i])
        db.execute("ANALYZE")
        db.query(REFRESH_SQL)  # warm the cache entry
        databases.append(db)

        chain_db = Database(
            planner_config=PlannerConfig(join_enumeration=enumeration)
        )
        build_skewed(chain_db, 4, rows)
        chain_select = parse_statement(JOIN_SQL)
        planned.append(
            time_per_call(
                lambda: chain_db.planner.plan_select(chain_select), iterations
            )
        )

    # Same physical plan on both sides (DP alone annotates join nodes with
    # estimates, so compare with the `[...]` annotations stripped) — the
    # per-query delta is then pure scheduler jitter, so rounds are
    # interleaved and each side keeps its best.
    def plan_shape(db: Database) -> list:
        plan = db.execute("EXPLAIN " + REFRESH_SQL).plan
        return [line.split("  [")[0] for line in plan.splitlines()]

    shapes = [plan_shape(db) for db in databases]
    assert shapes[0] == shapes[1], "dp and greedy chose different plans"
    # Sampling off: sampled executions plan fresh (the instrumented tree
    # must never enter the cache), which would charge DP's one-time
    # enumeration cost to the cached-execution measurement.
    for db in databases:
        db.statement_log.sample_every = 0
    executed = [float("inf"), float("inf")]
    gc.collect()
    gc.disable()  # a collection pause inside one side's slice reads as skew
    try:
        for _round in range(5):
            for i, db in enumerate(databases):
                executed[i] = min(
                    executed[i],
                    time_per_call(lambda: db.query(REFRESH_SQL), iterations),
                )
    finally:
        gc.enable()
    return executed[0], executed[1], planned[0], planned[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes; exit 1 if the adaptive loop fails to re-plan, "
        "the re-planned statement is not faster, or DP overhead > 10%%",
    )
    args = parser.parse_args(argv)
    grow_a = 600 if args.smoke else 3000
    b_rows = 400 if args.smoke else 2000
    iterations = 30 if args.smoke else 200

    stale_us, fresh_us, replans, drops = bench_adaptive(
        grow_a, b_rows, iterations
    )
    speedup = stale_us / fresh_us if fresh_us else float("inf")
    # One retry: the gate asserts "cache amortizes enumeration to ~zero",
    # and a single scheduler hiccup should not fail CI for that.
    for attempt in range(2):
        dp_us, greedy_us, dp_plan_us, greedy_plan_us = (
            bench_enumeration_overhead(b_rows, iterations)
        )
        overhead = dp_us / greedy_us - 1.0 if greedy_us else 0.0
        if overhead <= 0.10:
            break

    lines = [
        "Optimizer v2 benchmark",
        "",
        f"adaptive loop   replans fired    : {replans:10d}",
        f"                plans evicted    : {drops:10d}",
        f"                stale plan       : {stale_us:10.1f} us/query",
        f"                after re-plan    : {fresh_us:10.1f} us/query",
        f"                speedup          : {speedup:10.2f} x",
        "",
        f"refresh loop    dp (cached)      : {dp_us:10.1f} us/query",
        f"                greedy (cached)  : {greedy_us:10.1f} us/query",
        f"                dp overhead      : {overhead:10.1%}",
        "",
        f"plan time       dp (3-way chain) : {dp_plan_us:10.1f} us/plan",
        f"                greedy           : {greedy_plan_us:10.1f} us/plan",
        "",
        f"mode: {'smoke' if args.smoke else 'full'} "
        f"(grow_a={grow_a}, b_rows={b_rows}, iterations={iterations})",
    ]
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "optimizer.txt"), "w") as fh:
        fh.write(text + "\n")

    failures = []
    if replans < 1:
        failures.append("adaptive loop never re-planned the stale statement")
    if speedup < 1.1:
        failures.append(
            f"re-planned statement not faster (speedup {speedup:.2f}x < 1.1x)"
        )
    if overhead > 0.10:
        failures.append(f"DP enumeration overhead {overhead:.1%} > 10%")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
