"""Session-layer benchmark: per-statement overhead and contended throughput.

Three measurements:

1. **Per-statement overhead** — the same autocommit statement through a
   :class:`~repro.session.manager.Session` (lockset derivation, 2PL lock
   acquisition, context swap) vs straight ``db.execute``.  The smoke gate
   requires the session path to stay within 3x of embedded execution: the
   concurrency machinery must not dominate statement cost.
2. **Uncontended concurrency** — N sessions each hammering a private
   table from its own thread; aggregate statements/sec, no conflicts.
3. **Contended increments** — N sessions incrementing the *same* counter
   rows; reports deadlocks/retries/aborts from the lock manager and
   verifies the zero-lost-update invariant (the smoke gate): the final
   sum must equal exactly the number of acknowledged increments.

Run standalone (``python benchmarks/bench_sessions.py [--smoke]``);
results land in ``benchmarks/results/sessions.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.relational.database import Database  # noqa: E402
from repro.session import SessionConfig, SessionManager  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

OVERHEAD_GATE = 3.0


def time_per_call(fn, iterations: int) -> float:
    """Mean microseconds per call."""
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations * 1e6


def bench_overhead(iterations: int):
    """(embedded µs, session µs) for one cached point SELECT."""
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    manager = SessionManager(db)
    session = manager.connect()
    sql = "SELECT v FROM t WHERE id = 2"
    db.execute(sql)  # warm plan cache and code paths
    session.execute(sql)
    embedded = time_per_call(lambda: db.execute(sql), iterations)
    via_session = time_per_call(lambda: session.execute(sql), iterations)
    manager.close()
    return embedded, via_session


def bench_uncontended(sessions: int, per_session: int):
    """Aggregate statements/sec, each session on a private table."""
    db = Database()
    manager = SessionManager(db, SessionConfig(max_sessions=sessions))
    for i in range(sessions):
        db.execute(f"CREATE TABLE p{i} (id INT PRIMARY KEY, v INT)")

    def worker(i):
        session = manager.connect()
        try:
            for n in range(per_session):
                session.execute(f"INSERT INTO p{i} VALUES ({n}, {n})")
        finally:
            session.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(sessions)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    manager.close()
    return sessions * per_session / elapsed


def bench_contended(sessions: int, per_session: int):
    """(stmts/sec, committed, final sum, lock metrics) on shared rows."""
    db = Database()
    manager = SessionManager(
        db,
        SessionConfig(
            max_sessions=sessions,
            lock_timeout=1.0,
            backoff_base=0.0005,
            backoff_cap=0.01,
            retry_seed=42,
        ),
    )
    db.execute("CREATE TABLE c (id INT PRIMARY KEY, v INT)")
    db.execute("INSERT INTO c VALUES (0, 0), (1, 0)")
    committed = [0] * sessions

    def worker(i):
        session = manager.connect()
        try:
            for n in range(per_session):
                try:
                    session.execute(
                        f"UPDATE c SET v = v + 1 WHERE id = {n % 2}"
                    )
                    committed[i] += 1
                except Exception:  # retry budget exhausted: not committed
                    pass
        finally:
            session.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(sessions)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = db.query("SELECT SUM(v) FROM c")[0][0]
    snap = db.metrics_snapshot()["sessions"]
    manager.close()
    return (
        sessions * per_session / elapsed,
        sum(committed),
        total,
        {k: snap[k] for k in
         ("lock_waits", "lock_deadlocks", "lock_timeouts", "retries")},
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small iteration counts + pass/fail gates")
    args = parser.parse_args(argv)

    iterations = 300 if args.smoke else 2000
    sessions = 8
    per_session = 40 if args.smoke else 200

    embedded, via_session = bench_overhead(iterations)
    ratio = via_session / embedded
    uncontended = bench_uncontended(sessions, per_session)
    contended, committed, total, locks = bench_contended(
        sessions, per_session
    )

    lines = [
        "session layer benchmark",
        f"  per-statement: embedded {embedded:8.1f} us | "
        f"session {via_session:8.1f} us | overhead {ratio:.2f}x "
        f"(gate <= {OVERHEAD_GATE:.1f}x)",
        f"  uncontended  : {sessions} sessions, private tables  "
        f"{uncontended:10.0f} stmts/sec",
        f"  contended    : {sessions} sessions, 2 shared rows   "
        f"{contended:10.0f} stmts/sec",
        f"                 committed {committed} | SUM(v) {total} "
        f"({'exact' if committed == total else 'LOST UPDATES'})",
        f"                 {locks}",
    ]
    report = "\n".join(lines)
    print(report)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "sessions.txt"), "w",
              encoding="utf-8") as fh:
        fh.write(report + "\n")

    if args.smoke:
        failed = []
        if ratio > OVERHEAD_GATE:
            failed.append(
                f"session overhead {ratio:.2f}x exceeds {OVERHEAD_GATE}x"
            )
        if committed != total:
            failed.append(
                f"lost updates: {committed} committed but SUM(v) = {total}"
            )
        if failed:
            print("SMOKE FAIL: " + "; ".join(failed))
            return 1
        print("smoke gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
