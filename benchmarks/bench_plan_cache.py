"""Plan/statement cache benchmark: planning cost on hit vs miss, and the
hit rate of the forms refresh loop.

Three measurements:

1. **Planning cost** — parse+plan from scratch vs serving the memoized
   plan from the cache (the tentpole claim: >= 5x cheaper on a hit).
2. **End-to-end statement cost** — ``db.execute`` throughput with the
   cache on (warm) vs off (``plan_cache_size=0``).
3. **Forms refresh hit rate** — a generated form refreshed repeatedly and
   scrolled through QBF criteria must serve >= 90% of its statements from
   the cache (the CI smoke gate).

Run standalone (``python benchmarks/bench_plan_cache.py [--smoke]``);
``--smoke`` uses small iteration counts and exits non-zero if the hit-rate
gate fails.  Results land in ``benchmarks/results/plan_cache.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.forms.generate import generate_form  # noqa: E402
from repro.forms.runtime import FormController  # noqa: E402
from repro.relational.database import Database  # noqa: E402
from repro.sql.parser import parse_statement  # noqa: E402
from repro.workloads import build_university  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SQL = (
    "SELECT s.name, d.name FROM students s "
    "JOIN departments d ON s.major_id = d.id "
    "WHERE s.gpa >= 3.0 AND s.year = 2 ORDER BY s.name"
)


def time_per_call(fn, iterations: int) -> float:
    """Mean microseconds per call."""
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations * 1e6


def bench_planning_cost(db: Database, iterations: int):
    """(fresh parse+plan µs, cached lookup+serve µs)."""

    def fresh():
        db.planner.plan_select(parse_statement(SQL))

    db.execute(SQL)  # warm the cache entry

    def cached():
        entry = db._lookup_statement(SQL)
        db._select_plan(entry.statement, cache_entry=entry)

    fresh()  # warm code paths before timing
    cached()
    return time_per_call(fresh, iterations), time_per_call(cached, iterations)


def bench_end_to_end(iterations: int):
    """(execute µs with cache, execute µs without cache)."""
    cached_db = build_university(students=300, courses=20)
    uncached_db = build_university(Database(plan_cache_size=0), students=300, courses=20)
    cached_db.execute(SQL)
    uncached_db.execute(SQL)
    on = time_per_call(lambda: cached_db.execute(SQL), iterations)
    off = time_per_call(lambda: uncached_db.execute(SQL), iterations)
    return on, off


def bench_forms_hit_rate(refreshes: int):
    """Hit rate of a form's refresh/QBF loop, from the cache counters."""
    db = build_university(students=200, courses=20)
    controller = FormController(db, generate_form(db, "students"))
    before = db.metrics_snapshot()["plan_cache"]
    for i in range(refreshes):
        controller.refresh()
        if i % 10 == 5:  # periodically re-filter with a fresh criterion value
            controller.begin_query()
            controller.set_field("year", str(1 + i % 4))
            controller.execute_query()
    after = db.metrics_snapshot()["plan_cache"]
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    return hits, misses, hits / max(1, hits + misses)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small iteration counts; exit 1 if the refresh hit rate < 90%%",
    )
    args = parser.parse_args(argv)
    iterations = 50 if args.smoke else 500
    refreshes = 50 if args.smoke else 200

    db = build_university(students=300, courses=20)
    fresh_us, cached_us = bench_planning_cost(db, iterations)
    speedup = fresh_us / cached_us if cached_us else float("inf")
    on_us, off_us = bench_end_to_end(iterations)
    hits, misses, hit_rate = bench_forms_hit_rate(refreshes)

    lines = [
        "Plan/statement cache benchmark",
        "",
        f"planning cost   fresh parse+plan : {fresh_us:10.1f} us/stmt",
        f"                cached hit       : {cached_us:10.1f} us/stmt",
        f"                reduction        : {speedup:10.1f} x",
        "",
        f"end-to-end      cache on (warm)  : {on_us:10.1f} us/execute",
        f"                cache off        : {off_us:10.1f} us/execute",
        f"                speedup          : {off_us / on_us:10.2f} x",
        "",
        f"forms refresh   hits={hits} misses={misses} hit rate={hit_rate:.1%}",
        "",
        f"mode: {'smoke' if args.smoke else 'full'} "
        f"(iterations={iterations}, refreshes={refreshes})",
    ]
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "plan_cache.txt"), "w") as fh:
        fh.write(text + "\n")

    failures = []
    if hit_rate < 0.9:
        failures.append(f"refresh hit rate {hit_rate:.1%} < 90%")
    if speedup < 5.0:
        failures.append(f"planning-cost reduction {speedup:.1f}x < 5x")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
