"""Table 2 — automatic form generation over 12 relations/views.

Expected shape: 100% of the form spec is auto-derived for every source;
pick lists appear exactly on single-column FK fields; non-updatable (join/
aggregate) views degrade gracefully to read-only browse forms.
"""

from __future__ import annotations

from repro.forms.generate import generate_form_with_stats
from repro.workloads import build_library, build_supplier_parts, build_university

SOURCES = [
    ("university", "departments"),
    ("university", "students"),
    ("university", "courses"),
    ("university", "enrollments"),
    ("university", "senior_students"),
    ("university", "cs_students"),
    ("university", "transcript"),
    ("university", "dept_load"),
    ("supplier_parts", "suppliers"),
    ("supplier_parts", "london_suppliers"),
    ("supplier_parts", "heavy_red_parts"),
    ("library", "catalog"),
]


def _databases():
    return {
        "university": build_university(students=50, courses=10),
        "supplier_parts": build_supplier_parts(suppliers=10, parts=20, shipments=40),
        "library": build_library(books=10, members=5, loans=20),
    }


def test_table2_formgen(report, benchmark):
    dbs = _databases()

    def generate_all():
        return [
            generate_form_with_stats(dbs[workload], source)
            for workload, source in SOURCES
        ]

    results = benchmark(generate_all)

    report.section("Table 2 — automatic form generation (12 sources)")
    rows = []
    for (workload, source), (spec, stats) in zip(SOURCES, results):
        rows.append(
            (
                f"{workload}.{source}",
                stats.fields,
                stats.layout_rows,
                stats.key_fields,
                stats.pick_lists,
                "browse-only" if stats.read_only else "full DML",
                "100%",
            )
        )
    report.table(
        ["source", "fields", "rows", "key flds", "pick lists", "capability", "auto-derived"],
        rows,
    )
    report.save("table2_formgen")

    by_name = {f"{w}.{s}": stats for (w, s), (_spec, stats) in zip(SOURCES, results)}
    # Shape assertions.
    assert by_name["university.students"].pick_lists == 1  # major_id -> departments
    assert by_name["university.enrollments"].pick_lists == 2
    assert by_name["university.enrollments"].key_fields == 3  # composite PK
    assert by_name["university.transcript"].read_only  # join view
    assert by_name["university.dept_load"].read_only  # aggregate view
    assert not by_name["university.senior_students"].read_only  # updatable view
    assert by_name["supplier_parts.heavy_red_parts"].key_fields == 1  # via view chain
    for stats in by_name.values():
        assert stats.fields == stats.layout_rows  # one field per row
