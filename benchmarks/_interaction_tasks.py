"""The eight canonical interaction tasks of Table 1, per interface.

Each function performs the SAME user-visible task through one interface on
a fresh university database and returns the keystrokes it cost.  Tasks
verify their own side effects, so a keystroke count only gets reported if
the task actually worked.

Task list (DESIGN.md, Table 1):

    T1 lookup          find student #137's record
    T2 scan            read the 5 records following it
    T3 update-field    set that student's gpa to 3.5
    T4 insert          add a new student record
    T5 delete          remove the record just added
    T6 ranged-query    students with year = 4 and gpa >= 3.5
    T7 master-detail   the students of department 2, via a second window
    T8 multi-query     students named 'a%' in year 2

Conventions: forms and windows are assumed predefined (the paper's premise
— the application builder made the forms; the clerk only uses them), so
form-opening costs are not charged to tasks.  The SQL baseline charges one
keystroke per character typed plus ENTER.  The dump browser charges its
command characters, including the per-record stepping its lack of queries
forces on tasks T6–T8.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.baselines import DumpBrowser, SqlCli
from repro.core import WowApp
from repro.relational.database import Database
from repro.workloads import build_university

TASK_NAMES = [
    "T1 lookup",
    "T2 scan-5",
    "T3 update-field",
    "T4 insert",
    "T5 delete",
    "T6 ranged-query",
    "T7 master-detail",
    "T8 multi-query",
]

STUDENTS = 300


def fresh_db() -> Database:
    return build_university(students=STUDENTS, courses=30)


# ---------------------------------------------------------------------------
# Forms interface
# ---------------------------------------------------------------------------

def run_forms_tasks() -> Dict[str, int]:
    db = fresh_db()
    app = WowApp(db, width=100, height=30)
    students = app.open_form("students", x=0, y=0)
    departments = app.open_form("departments", x=50, y=0)
    app.link(departments, students, on=[("id", "major_id")])
    # Clear the link for the single-form tasks; T7 re-establishes focus.
    app.send_keys("")  # no-op; keeps meters at zero before tasks
    app.keys.reset()
    counts: Dict[str, int] = {}
    controller = students.controller

    # The students form starts linked to department 1; unlink for T1-T6 by
    # raising the students window and clearing via master staying put —
    # instead, simply drop the link filter for a fair single-form baseline.
    controller.extra_filter = None
    controller.refresh()
    app.wm.raise_window(students)

    # T1 lookup
    app.keys.start_task("T1 lookup")
    app.send_keys("<F4>137<ENTER>")
    assert controller.field_texts["id"] == "137"
    counts["T1 lookup"] = app.keys.end_task()
    gpa_before = controller.field_texts["gpa"]

    # T2 scan the 5 following records.  ESC first clears the filter
    # (2 extra keys charged: the task starts from the lookup's state).
    app.keys.start_task("T2 scan-5")
    app.send_keys("<ESC>")  # clear filter; position preserved on id=137? ESC reloads all
    app.send_keys("<F4>>137<ENTER>")  # records after 137
    app.send_keys("<DOWN><DOWN><DOWN><DOWN>")
    assert controller.position == 4
    counts["T2 scan-5"] = app.keys.end_task()

    # T3 update gpa of student 137 to 3.5.
    app.keys.start_task("T3 update-field")
    app.send_keys("<ESC><F4>137<ENTER>")
    app.send_keys("<F2><TAB><TAB><TAB><TAB>3.5<F2>")
    counts["T3 update-field"] = app.keys.end_task()
    assert db.execute("SELECT gpa FROM students WHERE id = 137").scalar() == 3.5

    # T4 insert a new student.
    app.keys.start_task("T4 insert")
    app.send_keys("<F3>9001<TAB>new student<TAB>2<TAB>1<TAB>2.5<F2>")
    counts["T4 insert"] = app.keys.end_task()
    assert db.execute("SELECT COUNT(*) FROM students WHERE id = 9001").scalar() == 1

    # T5 delete it again (find + F6).
    app.keys.start_task("T5 delete")
    app.send_keys("<F4>9001<ENTER><F6>")
    counts["T5 delete"] = app.keys.end_task()
    assert db.execute("SELECT COUNT(*) FROM students WHERE id = 9001").scalar() == 0

    # T6 ranged query: year = 4 AND gpa >= 3.5.
    app.keys.start_task("T6 ranged-query")
    app.send_keys("<ESC><F4><TAB><TAB><TAB>4<TAB>>=3.5<ENTER>")
    counts["T6 ranged-query"] = app.keys.end_task()
    expected = db.execute(
        "SELECT COUNT(*) FROM students WHERE year = 4 AND gpa >= 3.5"
    ).scalar()
    assert controller.record_count == expected

    # T7 master-detail: students of department 2 via the linked window.
    controller.query_filter = None
    app.keys.start_task("T7 master-detail")
    app.send_keys("<F1>")  # next window = departments (master)
    app.send_keys("<DOWN>")  # department 2; link refilters the detail
    counts["T7 master-detail"] = app.keys.end_task()
    expected = db.execute(
        "SELECT COUNT(*) FROM students WHERE major_id = 2"
    ).scalar()
    assert controller.record_count == expected

    # T8 multi-field query: name LIKE 'a%' AND year = 2.
    app.wm.raise_window(students)
    controller.extra_filter = None
    controller.refresh()
    app.keys.start_task("T8 multi-query")
    app.send_keys("<F4><TAB>a%<TAB><TAB>2<ENTER>")
    counts["T8 multi-query"] = app.keys.end_task()
    expected = db.execute(
        "SELECT COUNT(*) FROM students WHERE name LIKE 'a%' AND year = 2"
    ).scalar()
    assert controller.record_count == expected
    return counts


# ---------------------------------------------------------------------------
# SQL monitor baseline
# ---------------------------------------------------------------------------

def run_sql_tasks() -> Dict[str, int]:
    db = fresh_db()
    cli = SqlCli(db)
    counts: Dict[str, int] = {}

    cli.keys.start_task("T1 lookup")
    result = cli.run("SELECT * FROM students WHERE id = 137")
    assert len(result.rows) == 1
    counts["T1 lookup"] = cli.keys.end_task()

    cli.keys.start_task("T2 scan-5")
    result = cli.run("SELECT * FROM students WHERE id > 137 ORDER BY id LIMIT 5")
    assert len(result.rows) == 5
    counts["T2 scan-5"] = cli.keys.end_task()

    cli.keys.start_task("T3 update-field")
    cli.run("UPDATE students SET gpa = 3.5 WHERE id = 137")
    counts["T3 update-field"] = cli.keys.end_task()
    assert db.execute("SELECT gpa FROM students WHERE id = 137").scalar() == 3.5

    cli.keys.start_task("T4 insert")
    cli.run("INSERT INTO students VALUES (9001, 'new student', 2, 1, 2.5)")
    counts["T4 insert"] = cli.keys.end_task()

    cli.keys.start_task("T5 delete")
    cli.run("DELETE FROM students WHERE id = 9001")
    counts["T5 delete"] = cli.keys.end_task()

    cli.keys.start_task("T6 ranged-query")
    result = cli.run("SELECT * FROM students WHERE year = 4 AND gpa >= 3.5")
    counts["T6 ranged-query"] = cli.keys.end_task()
    assert result is not None

    cli.keys.start_task("T7 master-detail")
    result = cli.run(
        "SELECT s.* FROM students s JOIN departments d ON s.major_id = d.id "
        "WHERE d.id = 2"
    )
    counts["T7 master-detail"] = cli.keys.end_task()

    cli.keys.start_task("T8 multi-query")
    result = cli.run("SELECT * FROM students WHERE name LIKE 'a%' AND year = 2")
    counts["T8 multi-query"] = cli.keys.end_task()
    return counts


# ---------------------------------------------------------------------------
# Dump-browser baseline
# ---------------------------------------------------------------------------

def run_dump_tasks() -> Dict[str, int]:
    db = fresh_db()
    browser = DumpBrowser(db, "students")
    counts: Dict[str, int] = {}

    browser.keys.start_task("T1 lookup")
    browser.command("/id=137")
    assert browser.current_row()[0] == 137
    counts["T1 lookup"] = browser.keys.end_task()

    browser.keys.start_task("T2 scan-5")
    for _ in range(5):
        browser.command("n")
    counts["T2 scan-5"] = browser.keys.end_task()

    browser.keys.start_task("T3 update-field")
    browser.command("/id=137")
    browser.command("u gpa=3.5")
    counts["T3 update-field"] = browser.keys.end_task()
    assert db.execute("SELECT gpa FROM students WHERE id = 137").scalar() == 3.5

    browser.keys.start_task("T4 insert")
    browser.command("i id=9001,name=new student,major_id=2,year=1,gpa=2.5")
    counts["T4 insert"] = browser.keys.end_task()

    browser.keys.start_task("T5 delete")
    browser.command("/id=9001")
    browser.command("x")
    counts["T5 delete"] = browser.keys.end_task()

    # T6: only single-predicate filters exist; filter on gpa, then step
    # through every match checking 'year' by eye.
    browser.keys.start_task("T6 ranged-query")
    browser.command("q gpa >= 3.5")
    for _ in range(max(0, len(browser.rows) - 1)):
        browser.command("n")
    counts["T6 ranged-query"] = browser.keys.end_task()

    # T7: filter to the department, step through each student.
    browser.keys.start_task("T7 master-detail")
    browser.command("q major_id = 2")
    for _ in range(max(0, len(browser.rows) - 1)):
        browser.command("n")
    counts["T7 master-detail"] = browser.keys.end_task()

    # T8: filter on year, walk every record to eyeball the names.
    browser.keys.start_task("T8 multi-query")
    browser.command("q year = 2")
    for _ in range(max(0, len(browser.rows) - 1)):
        browser.command("n")
    counts["T8 multi-query"] = browser.keys.end_task()
    return counts
