"""Ablation C — what authorization checks cost on the hot paths.

Every SELECT and DML statement consults the AuthManager.  The ablation
compares superuser execution (owner fast path) with a granted non-owner
(grant-set lookups) on point queries and single-row updates.  Expected
shape: the check is dictionary work — well under 10% of statement cost.
"""

from __future__ import annotations

import time

from repro.workloads import build_university

OPS = 300


def _timed(db, sql_factory) -> float:
    start = time.perf_counter()
    for i in range(OPS):
        db.execute(sql_factory(i))
    return (time.perf_counter() - start) / OPS * 1e6  # µs/stmt


def test_ablation_auth_overhead(report, benchmark):
    db = build_university(students=500, courses=20)
    db.execute("GRANT SELECT, UPDATE ON students TO clerk")

    def select_sql(i: int) -> str:
        return f"SELECT name FROM students WHERE id = {1 + (i % 500)}"

    import itertools

    write_counter = itertools.count()

    def update_sql(i: int) -> str:
        # A globally increasing value so every statement really writes
        # (a repeated value would hit the engine's no-op fast path).
        return (
            f"UPDATE students SET gpa = {float(next(write_counter) % 97)} "
            f"WHERE id = {1 + (i % 500)}"
        )

    # Warm both paths, then measure.
    for user in ("dba", "clerk", "dba"):
        db.set_user(user)
        _timed(db, select_sql)
    db.set_user("dba")
    dba_select = _timed(db, select_sql)
    dba_update = _timed(db, update_sql)
    db.set_user("clerk")
    clerk_select = _timed(db, select_sql)
    clerk_update = _timed(db, update_sql)
    db.set_user("dba")

    benchmark(lambda: db.execute(select_sql(0)))

    report.section("Ablation C — authorization overhead (µs/statement)")
    report.table(
        ["user", "point SELECT", "single-row UPDATE"],
        [
            ("dba (owner fast path)", f"{dba_select:.1f}", f"{dba_update:.1f}"),
            ("clerk (grant lookups)", f"{clerk_select:.1f}", f"{clerk_update:.1f}"),
        ],
    )
    select_overhead = clerk_select / dba_select
    update_overhead = clerk_update / dba_update
    report.line(
        f"\noverheads: SELECT {select_overhead:.2f}x, UPDATE {update_overhead:.2f}x"
        "\nfinding: per-statement privilege checks are noise next to execution."
    )
    report.save("ablation_auth")

    # Shape: both paths stay within 50% of each other (checks are dict work).
    assert 0.5 < select_overhead < 1.5
    assert 0.5 < update_overhead < 1.5
