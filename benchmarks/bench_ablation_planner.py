"""Ablation B (design decision D3) — planner features on/off.

Toggles predicate pushdown and index selection independently on a selective
join query over 10^4 rows.  Expected shape: each feature contributes; both
off is the worst case; pushdown without indexes still helps (filters before
the join); indexes without pushdown cannot help (the predicate never
reaches the scan).
"""

from __future__ import annotations

import time

from repro.relational.database import Database
from repro.workloads import build_university

QUERY = (
    "SELECT s.name, d.name FROM students s JOIN departments d "
    "ON s.major_id = d.id WHERE s.id = 4321"
)
REPEATS = 5


def _time_config(db: Database, pushdown: bool, index: bool) -> float:
    db.planner_config.enable_pushdown = pushdown
    db.planner_config.enable_index_selection = index
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        rows = db.query(QUERY)
        best = min(best, time.perf_counter() - start)
        assert len(rows) == 1
    db.planner_config.enable_pushdown = True
    db.planner_config.enable_index_selection = True
    return best * 1000.0


def test_ablation_planner_features(report, benchmark):
    db = build_university(students=10_000, courses=50, enrollments_per_student=0)

    timings = {
        (True, True): _time_config(db, True, True),
        (True, False): _time_config(db, True, False),
        (False, False): _time_config(db, False, False),
    }

    benchmark(lambda: db.query(QUERY))

    report.section("Ablation B — planner features on a selective join (10k rows)")
    report.table(
        ["pushdown", "index selection", "ms/query", "vs full planner"],
        [
            (
                "on" if pushdown else "off",
                "on" if index else "off",
                f"{ms:.3f}",
                f"{ms / timings[(True, True)]:.1f}x",
            )
            for (pushdown, index), ms in timings.items()
        ],
    )
    report.save("ablation_planner")

    full = timings[(True, True)]
    no_index = timings[(True, False)]
    nothing = timings[(False, False)]
    # Shape: full planner is fastest; removing indexes hurts; removing
    # pushdown too is the worst (predicate evaluated after the join).
    assert full < no_index
    assert no_index <= nothing * 1.3  # pushdown-only is no worse than none
    assert nothing > full * 5  # the features matter a lot at 10k rows
