"""Statement-log benchmark: what query-insight capture costs per statement.

Three configurations run the same point-select loop:

1. **capture off** — ``statlog_capacity=0`` (plus a disabled registry and
   tracer): the baseline the <5% no-op overhead gate in
   ``bench_micro_engine.py`` protects.
2. **ring capture** — the default: every statement recorded into the
   in-memory ring (fingerprint served from the plan cache on hits).
3. **ring + JSONL sink** — capture plus an append-to-disk JSON line per
   statement, the configuration CI uses to upload telemetry artifacts.

Run standalone (``python benchmarks/bench_obs_statlog.py [--smoke]``);
``--smoke`` uses small iteration counts and exits non-zero if ring capture
costs more than the gate allows over the capture-off baseline.  Results
land in ``benchmarks/results/obs_statlog.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import Registry  # noqa: E402
from repro.relational.database import Database  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: ring capture must stay under this premium over capture-off (generous:
#: the capture path costs two pager sweeps + one record per statement)
RING_OVERHEAD_GATE_PCT = 60.0

SQL = "SELECT name FROM t WHERE id = 1234"


def build_db(**kwargs) -> Database:
    db = Database(obs=Registry(enabled=False), **kwargs)
    db.tracer.enabled = False
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    db.execute("BEGIN")
    for i in range(2000):
        db.insert("t", {"id": i, "name": f"row{i}"})
    db.execute("COMMIT")
    return db


def best_round(db: Database, iterations: int, rounds: int) -> float:
    """Best-of-N mean microseconds per execute."""
    db.execute(SQL)  # warm the plan cache and code paths
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            db.execute(SQL)
        best = min(best, time.perf_counter() - start)
    return best / iterations * 1e6


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small iteration counts; exit 1 if ring capture overhead "
        f"exceeds {RING_OVERHEAD_GATE_PCT:.0f}%%",
    )
    args = parser.parse_args(argv)
    iterations = 100 if args.smoke else 500
    rounds = 5 if args.smoke else 9

    off_db = build_db(statlog_capacity=0)
    ring_db = build_db()
    with tempfile.TemporaryDirectory() as tmp:
        sink_db = build_db(statlog_path=os.path.join(tmp, "statements.jsonl"))
        off_us = best_round(off_db, iterations, rounds)
        ring_us = best_round(ring_db, iterations, rounds)
        sink_us = best_round(sink_db, iterations, rounds)
        sink_snapshot = sink_db.statement_log.snapshot()
        sink_db.close()

    ring_pct = (ring_us / off_us - 1.0) * 100.0
    sink_pct = (sink_us / off_us - 1.0) * 100.0

    lines = [
        "Statement-log capture cost (point select)",
        "",
        f"capture off (statlog_capacity=0) : {off_us:8.1f} us/execute",
        f"ring capture (default)           : {ring_us:8.1f} us/execute  ({ring_pct:+.1f}%)",
        f"ring + JSONL sink                : {sink_us:8.1f} us/execute  ({sink_pct:+.1f}%)",
        "",
        f"sink bytes written: {sink_snapshot.get('sink_bytes', 0)}"
        f" (rotations: {sink_snapshot.get('sink_rotations', 0)})",
        "",
        f"mode: {'smoke' if args.smoke else 'full'} "
        f"(iterations={iterations}, rounds={rounds})",
    ]
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "obs_statlog.txt"), "w") as fh:
        fh.write(text + "\n")

    if ring_pct > RING_OVERHEAD_GATE_PCT:
        print(
            f"FAIL: ring capture overhead {ring_pct:.1f}% > "
            f"{RING_OVERHEAD_GATE_PCT:.0f}%",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
